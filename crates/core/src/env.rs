//! Program environment: validated struct table and elaborated function
//! signatures (the semantic form of §4.9's surface annotations).

use std::collections::{BTreeMap, BTreeSet};

use fearless_syntax::{FnDef, Program, RegionPath, StructDef, Symbol, Type};

use crate::error::TypeError;
use crate::mode::CheckerMode;

/// An elaborated function signature.
///
/// The input contexts are implicit in the paper's defaults (§4.9): each
/// reference parameter arrives in its own unpinned region with an empty
/// tracking context, except that `before:` relations merge input regions
/// and `pinned` marks them pinned. The output is described by a partition
/// of region paths induced by the `after:` relations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FnSig {
    /// Function name.
    pub name: Symbol,
    /// Parameter names in order.
    pub params: Vec<Symbol>,
    /// Parameter types in order.
    pub param_tys: Vec<Type>,
    /// Result type.
    pub ret: Type,
    /// Parameters consumed by the call (their region is removed from the
    /// caller's context).
    pub consumes: BTreeSet<Symbol>,
    /// Parameters whose input region is pinned (partial information).
    pub pinned: BTreeSet<Symbol>,
    /// Input region classes: each inner vec is a set of reference
    /// parameters sharing one input region (singletons by default).
    pub input_classes: Vec<Vec<Symbol>>,
    /// Output region classes over [`RegionPath`]s. Every non-consumed
    /// reference parameter appears in exactly one class; `Result` appears
    /// iff the result is a reference type; `Field(p, f)` entries denote
    /// fields tracked at output.
    pub output_classes: Vec<Vec<RegionPath>>,
    /// Number of surface annotations (for Table 1's "Simple" column).
    pub annotation_count: usize,
}

impl FnSig {
    /// Index of a parameter.
    pub fn param_index(&self, name: &Symbol) -> Option<usize> {
        self.params.iter().position(|p| p == name)
    }

    /// Whether the parameter is reference-typed.
    pub fn is_reference_param(&self, name: &Symbol) -> bool {
        self.param_index(name)
            .map(|i| self.param_tys[i].is_reference())
            .unwrap_or(false)
    }

    /// The output class containing `path`, if any.
    pub fn output_class_of(&self, path: &RegionPath) -> Option<usize> {
        self.output_classes.iter().position(|c| c.contains(path))
    }
}

/// Validated global environment for a program.
#[derive(Clone, Debug, Default)]
pub struct Globals {
    structs: BTreeMap<Symbol, StructDef>,
    sigs: BTreeMap<Symbol, FnSig>,
}

impl Globals {
    /// Builds and validates the environment for `program` under `mode`.
    ///
    /// # Errors
    ///
    /// Reports unresolved types, invalid `iso` placements, duplicate
    /// definitions, malformed annotations, and (in
    /// [`CheckerMode::TreeOfObjects`]) non-`iso` reference fields.
    pub fn build(program: &Program, mode: CheckerMode) -> Result<Self, TypeError> {
        let mut globals = Globals::default();
        for s in &program.structs {
            if globals.structs.contains_key(&s.name) {
                return Err(TypeError::new(
                    format!("duplicate struct `{}`", s.name),
                    s.span,
                ));
            }
            globals.structs.insert(s.name.clone(), s.clone());
        }
        for s in &program.structs {
            globals.validate_struct(s, mode)?;
        }
        for f in &program.funcs {
            if globals.sigs.contains_key(&f.name) {
                return Err(TypeError::new(
                    format!("duplicate function `{}`", f.name),
                    f.span,
                ));
            }
            let sig = globals.elaborate_sig(f)?;
            globals.sigs.insert(f.name.clone(), sig);
        }
        Ok(globals)
    }

    /// Looks up a struct definition.
    pub fn struct_def(&self, name: &Symbol) -> Option<&StructDef> {
        self.structs.get(name)
    }

    /// Looks up an elaborated signature.
    pub fn sig(&self, name: &Symbol) -> Option<&FnSig> {
        self.sigs.get(name)
    }

    /// Iterates over all signatures.
    pub fn sigs(&self) -> impl Iterator<Item = &FnSig> {
        self.sigs.values()
    }

    fn resolve_type(&self, ty: &Type, span: fearless_syntax::Span) -> Result<(), TypeError> {
        if let Some(name) = ty.struct_name() {
            if !self.structs.contains_key(name) {
                return Err(TypeError::new(format!("unknown struct `{name}`"), span));
            }
        }
        Ok(())
    }

    fn validate_struct(&self, s: &StructDef, mode: CheckerMode) -> Result<(), TypeError> {
        for f in &s.fields {
            self.resolve_type(&f.ty, f.span)?;
            if f.iso && !f.ty.is_reference() {
                return Err(TypeError::new(
                    format!(
                        "field `{}` of `{}` is `iso` but has value type {}",
                        f.name, s.name, f.ty
                    ),
                    f.span,
                ));
            }
            if mode == CheckerMode::TreeOfObjects && !f.iso && f.ty.is_reference() {
                return Err(TypeError::new(
                    format!(
                        "tree-of-objects discipline: non-iso reference field `{}` of `{}` is \
                         not representable (every object reference must be unique)",
                        f.name, s.name
                    ),
                    f.span,
                ));
            }
        }
        Ok(())
    }

    fn elaborate_sig(&self, f: &FnDef) -> Result<FnSig, TypeError> {
        let params: Vec<Symbol> = f.params.iter().map(|p| p.name.clone()).collect();
        let param_tys: Vec<Type> = f.params.iter().map(|p| p.ty.clone()).collect();
        for p in &f.params {
            self.resolve_type(&p.ty, p.span)?;
        }
        self.resolve_type(&f.ret, f.span)?;

        let find_param = |name: &Symbol| -> Result<usize, TypeError> {
            params
                .iter()
                .position(|p| p == name)
                .ok_or_else(|| TypeError::new(format!("unknown parameter `{name}`"), f.span))
        };
        let require_reference = |idx: usize, what: &str| -> Result<(), TypeError> {
            if param_tys[idx].is_reference() {
                Ok(())
            } else {
                Err(TypeError::new(
                    format!(
                        "{what} `{}` has value type {}, which has no region",
                        params[idx], param_tys[idx]
                    ),
                    f.span,
                ))
            }
        };

        let mut consumes = BTreeSet::new();
        for c in &f.annotations.consumes {
            let idx = find_param(c)?;
            require_reference(idx, "consumed parameter")?;
            if !consumes.insert(c.clone()) {
                return Err(TypeError::new(
                    format!("parameter `{c}` consumed twice"),
                    f.span,
                ));
            }
        }
        let mut pinned = BTreeSet::new();
        for p in &f.annotations.pinned {
            let idx = find_param(p)?;
            require_reference(idx, "pinned parameter")?;
            pinned.insert(p.clone());
        }

        // Validate a region path appearing in annotations.
        let validate_path = |path: &RegionPath| -> Result<(), TypeError> {
            match path {
                RegionPath::Result => {
                    if !f.ret.is_reference() {
                        return Err(TypeError::new(
                            format!("`result` has value type {}, which has no region", f.ret),
                            f.span,
                        ));
                    }
                }
                RegionPath::Param(p) => {
                    let idx = find_param(p)?;
                    require_reference(idx, "parameter")?;
                    if consumes.contains(p) {
                        return Err(TypeError::new(
                            format!("consumed parameter `{p}` cannot appear in a region relation"),
                            f.span,
                        ));
                    }
                }
                RegionPath::Field(p, fld) => {
                    let idx = find_param(p)?;
                    require_reference(idx, "parameter")?;
                    if consumes.contains(p) {
                        return Err(TypeError::new(
                            format!("consumed parameter `{p}` cannot appear in a region relation"),
                            f.span,
                        ));
                    }
                    let sname = param_tys[idx].struct_name().cloned().ok_or_else(|| {
                        TypeError::new(format!("parameter `{p}` is not a struct"), f.span)
                    })?;
                    let sdef = self.structs.get(&sname).ok_or_else(|| {
                        TypeError::new(format!("unknown struct `{sname}`"), f.span)
                    })?;
                    match sdef.field(fld) {
                        Some(fd) if fd.iso => {}
                        Some(_) => {
                            return Err(TypeError::new(
                                format!(
                                    "`{p}.{fld}` is not an `iso` field; only iso fields have \
                                     distinct target regions"
                                ),
                                f.span,
                            ))
                        }
                        None => {
                            return Err(TypeError::new(
                                format!("struct `{sname}` has no field `{fld}`"),
                                f.span,
                            ))
                        }
                    }
                    if matches!(param_tys[idx], Type::Maybe(_)) {
                        return Err(TypeError::new(
                            format!("cannot name fields of maybe-typed parameter `{p}`"),
                            f.span,
                        ));
                    }
                }
            }
            Ok(())
        };

        // Input classes from `before:` relations (params only).
        let mut input_uf = UnionFind::new();
        for (i, ty) in param_tys.iter().enumerate() {
            if ty.is_reference() {
                input_uf.add(RegionPath::Param(params[i].clone()));
            }
        }
        for rel in &f.annotations.before {
            validate_path(&rel.lhs)?;
            validate_path(&rel.rhs)?;
            for p in [&rel.lhs, &rel.rhs] {
                if !matches!(p, RegionPath::Param(_)) {
                    return Err(TypeError::new(
                        "`before:` relations may only relate parameters".to_string(),
                        rel.span,
                    ));
                }
            }
            input_uf.union(&rel.lhs, &rel.rhs);
        }
        let input_classes: Vec<Vec<Symbol>> = input_uf
            .classes()
            .into_iter()
            .map(|class| {
                class
                    .into_iter()
                    .filter_map(|p| match p {
                        RegionPath::Param(x) => Some(x),
                        _ => None,
                    })
                    .collect()
            })
            .collect();

        // Output classes from `after:` relations.
        let mut output_uf = UnionFind::new();
        for (i, ty) in param_tys.iter().enumerate() {
            if ty.is_reference() && !consumes.contains(&params[i]) {
                output_uf.add(RegionPath::Param(params[i].clone()));
            }
        }
        if f.ret.is_reference() {
            output_uf.add(RegionPath::Result);
        }
        for rel in &f.annotations.after {
            validate_path(&rel.lhs)?;
            validate_path(&rel.rhs)?;
            output_uf.add(rel.lhs.clone());
            output_uf.add(rel.rhs.clone());
            output_uf.union(&rel.lhs, &rel.rhs);
        }
        // `before:`-merged inputs share one region for the whole call, so
        // they necessarily share an output class too.
        for rel in &f.annotations.before {
            let both_survive = [&rel.lhs, &rel.rhs].iter().all(|p| match p {
                RegionPath::Param(x) => !consumes.contains(x),
                _ => false,
            });
            if both_survive {
                output_uf.union(&rel.lhs, &rel.rhs);
            }
        }
        let output_classes = output_uf.classes();

        // A parameter may not share an output region with another parameter
        // *and* remain distinct at input unless the body can merge them;
        // that is legal (attach), so no extra validation here.

        Ok(FnSig {
            name: f.name.clone(),
            params,
            param_tys,
            ret: f.ret.clone(),
            consumes,
            pinned,
            input_classes,
            output_classes,
            annotation_count: f.annotations.count(),
        })
    }
}

/// A tiny union-find over [`RegionPath`] keys.
struct UnionFind {
    keys: Vec<RegionPath>,
    parent: Vec<usize>,
}

impl UnionFind {
    fn new() -> Self {
        UnionFind {
            keys: Vec::new(),
            parent: Vec::new(),
        }
    }

    fn add(&mut self, key: RegionPath) -> usize {
        if let Some(i) = self.keys.iter().position(|k| *k == key) {
            return i;
        }
        self.keys.push(key);
        self.parent.push(self.parent.len());
        self.parent.len() - 1
    }

    fn find(&mut self, i: usize) -> usize {
        if self.parent[i] != i {
            let root = self.find(self.parent[i]);
            self.parent[i] = root;
        }
        self.parent[i]
    }

    fn union(&mut self, a: &RegionPath, b: &RegionPath) {
        let (ia, ib) = (self.add(a.clone()), self.add(b.clone()));
        let (ra, rb) = (self.find(ia), self.find(ib));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }

    fn classes(&mut self) -> Vec<Vec<RegionPath>> {
        let mut by_root: BTreeMap<usize, Vec<RegionPath>> = BTreeMap::new();
        for i in 0..self.keys.len() {
            let root = self.find(i);
            by_root.entry(root).or_default().push(self.keys[i].clone());
        }
        by_root.into_values().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fearless_syntax::parse_program;

    const LISTS: &str = "
        struct data { value: int }
        struct sll_node { iso payload : data; iso next : sll_node? }
        struct dll_node { iso payload : data; next : dll_node; prev : dll_node }
        struct dll { iso hd : dll_node? }
    ";

    #[test]
    fn builds_list_structs() {
        let p = parse_program(LISTS).unwrap();
        let g = Globals::build(&p, CheckerMode::Tempered).unwrap();
        assert!(g.struct_def(&"dll_node".into()).is_some());
    }

    #[test]
    fn tree_of_objects_rejects_dll() {
        let p = parse_program(LISTS).unwrap();
        let err = Globals::build(&p, CheckerMode::TreeOfObjects).unwrap_err();
        assert!(err.message().contains("non-iso reference field"), "{err}");
    }

    #[test]
    fn rejects_iso_on_value_type() {
        let p = parse_program("struct s { iso n : int }").unwrap();
        assert!(Globals::build(&p, CheckerMode::Tempered).is_err());
    }

    #[test]
    fn rejects_unknown_struct() {
        let p = parse_program("struct s { f : nosuch }").unwrap();
        assert!(Globals::build(&p, CheckerMode::Tempered).is_err());
    }

    #[test]
    fn elaborates_consumes_and_after() {
        let src = format!(
            "{LISTS}
             def get_nth(l : dll, pos : int) : dll_node? after: l.hd ~ result {{ none }}
             def consume(x : dll) : unit consumes x {{ unit }}"
        );
        let p = parse_program(&src).unwrap();
        let g = Globals::build(&p, CheckerMode::Tempered).unwrap();
        let sig = g.sig(&"get_nth".into()).unwrap();
        // Output classes: one for l, one for {l.hd, result}.
        assert_eq!(sig.output_classes.len(), 2);
        let class = sig.output_class_of(&RegionPath::Result).unwrap();
        assert!(sig.output_classes[class].contains(&RegionPath::Field("l".into(), "hd".into())));
        let sig2 = g.sig(&"consume".into()).unwrap();
        assert!(sig2.consumes.contains("x"));
        assert!(sig2.output_classes.is_empty());
    }

    #[test]
    fn rejects_after_on_consumed_param() {
        let src = format!(
            "{LISTS}
             def bad(x : dll) : dll? consumes x after: x ~ result {{ none }}"
        );
        let p = parse_program(&src).unwrap();
        assert!(Globals::build(&p, CheckerMode::Tempered).is_err());
    }

    #[test]
    fn rejects_after_on_non_iso_field() {
        let src = format!(
            "{LISTS}
             def bad(x : dll_node) : dll_node? after: x.next ~ result {{ none }}"
        );
        let p = parse_program(&src).unwrap();
        let err = Globals::build(&p, CheckerMode::Tempered).unwrap_err();
        assert!(err.message().contains("not an `iso` field"), "{err}");
    }

    #[test]
    fn before_merges_input_classes() {
        let src = format!(
            "{LISTS}
             def two(a : dll_node, b : dll_node) : unit before: a ~ b {{ unit }}"
        );
        let p = parse_program(&src).unwrap();
        let g = Globals::build(&p, CheckerMode::Tempered).unwrap();
        let sig = g.sig(&"two".into()).unwrap();
        assert_eq!(sig.input_classes.len(), 1);
        assert_eq!(sig.input_classes[0].len(), 2);
    }

    #[test]
    fn rejects_result_relation_for_value_return() {
        let src = format!(
            "{LISTS}
             def bad(x : dll) : int after: x ~ result {{ 0 }}"
        );
        let p = parse_program(&src).unwrap();
        assert!(Globals::build(&p, CheckerMode::Tempered).is_err());
    }
}
