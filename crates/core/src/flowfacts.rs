//! Stable per-function flow facts mined from typing derivations.
//!
//! The checker's derivations record everything the flow layer needs to
//! reason about where `iso` subgraphs move: which regions `take`
//! retargets, which regions `send` discharges, which fields are
//! re-established by assignment, and where `if disconnected` forces a
//! dynamic reachability walk. This module distills those events into a
//! small, stable [`FnFlowFacts`] structure so downstream consumers (the
//! `fearless-flow` analysis and the FA005–FA007 lints in
//! `fearless-analyze`) depend on a narrow interface instead of on the
//! derivation encoding itself.
//!
//! Facts are listed in derivation-node order, which for the sequential
//! core language follows evaluation order — "a send *after* a take" is
//! simply a larger node index.

use std::collections::BTreeMap;

use fearless_syntax::{Expr, ExprId, ExprKind, Span, Symbol};

use crate::ctx::RegionId;
use crate::derivation::Rule;
use crate::CheckedProgram;

/// A `take(x.f)`: the `iso` field's subgraph is severed into a region of
/// its own.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TakeFact {
    /// Index of the `Take` node in the function's derivation arena.
    pub node: usize,
    /// The region the taken subgraph now lives in.
    pub region: Option<RegionId>,
    /// Receiver variable, when the receiver is a plain variable.
    pub recv: Option<Symbol>,
    /// The field taken from.
    pub field: Option<Symbol>,
    /// Source span of the `take` expression.
    pub span: Span,
}

/// A `send(e)`: the value's region is discharged and its subgraph leaves
/// the thread.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SendFact {
    /// Index of the `Send` node in the derivation arena.
    pub node: usize,
    /// The discharged region of the sent value.
    pub region: Option<RegionId>,
    /// Source span of the `send` expression.
    pub span: Span,
}

/// A field assignment `x.f = e` (plain or `iso`): the field is
/// (re-)established with a new target.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FieldAssignFact {
    /// Index of the assignment node in the derivation arena.
    pub node: usize,
    /// Receiver variable, when the receiver is a plain variable.
    pub recv: Option<Symbol>,
    /// The assigned field.
    pub field: Option<Symbol>,
    /// Source span of the assignment.
    pub span: Span,
}

/// An `if disconnected(a, b)`: a dynamic reachability walk over the two
/// roots' shared region.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DisconnectFact {
    /// Index of the `IfDisconnected` node in the derivation arena.
    pub node: usize,
    /// First root variable.
    pub a: Symbol,
    /// Second root variable.
    pub b: Symbol,
    /// The shared region both roots live in at the check.
    pub region: Option<RegionId>,
    /// Source span of the `if disconnected` expression.
    pub span: Span,
}

/// Every flow-relevant event of one function, in derivation-node order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FnFlowFacts {
    /// The function these facts describe.
    pub func: Symbol,
    /// All `take` events.
    pub takes: Vec<TakeFact>,
    /// All `send` events.
    pub sends: Vec<SendFact>,
    /// All field assignments (plain and `iso`).
    pub field_assigns: Vec<FieldAssignFact>,
    /// All `if disconnected` checks.
    pub disconnects: Vec<DisconnectFact>,
}

/// Owned, per-expression extract of the shapes the facts need (the AST
/// walker hands out short-lived borrows, so the map stores owned data).
#[derive(Clone, Debug)]
enum ExprShape {
    Take { recv: Option<Symbol>, field: Symbol },
    AssignField { recv: Option<Symbol>, field: Symbol },
    Disconnect { a: Symbol, b: Symbol },
    Other,
}

fn shape_of(e: &Expr) -> ExprShape {
    let var_of = |recv: &Expr| match &recv.kind {
        ExprKind::Var(x) => Some(x.clone()),
        _ => None,
    };
    match &e.kind {
        ExprKind::Take(recv, field) => ExprShape::Take {
            recv: var_of(recv),
            field: field.clone(),
        },
        ExprKind::AssignField(recv, field, _) => ExprShape::AssignField {
            recv: var_of(recv),
            field: field.clone(),
        },
        ExprKind::IfDisconnected { a, b, .. } => ExprShape::Disconnect {
            a: a.clone(),
            b: b.clone(),
        },
        _ => ExprShape::Other,
    }
}

/// Extracts [`FnFlowFacts`] for every function of a checked program, in
/// definition order.
pub fn flow_facts(checked: &CheckedProgram) -> Vec<FnFlowFacts> {
    checked
        .derivations
        .iter()
        .map(|d| {
            let mut facts = FnFlowFacts {
                func: d.func.clone(),
                takes: Vec::new(),
                sends: Vec::new(),
                field_assigns: Vec::new(),
                disconnects: Vec::new(),
            };
            let exprs: BTreeMap<ExprId, (Span, ExprShape)> = checked
                .program
                .func(&d.func)
                .map(|def| {
                    let mut map = BTreeMap::new();
                    def.body.walk(&mut |e| {
                        map.insert(e.id, (e.span, shape_of(e)));
                    });
                    map
                })
                .unwrap_or_default();
            for (idx, node) in d.nodes.iter().enumerate() {
                let info = node.expr.and_then(|id| exprs.get(&id));
                let span = info.map(|(s, _)| *s).unwrap_or_default();
                let shape = info.map(|(_, k)| k);
                match node.rule {
                    Rule::Take => {
                        let (recv, field) = match shape {
                            Some(ExprShape::Take { recv, field }) => {
                                (recv.clone(), Some(field.clone()))
                            }
                            _ => (None, None),
                        };
                        facts.takes.push(TakeFact {
                            node: idx,
                            region: node.result.as_ref().and_then(|r| r.region),
                            recv,
                            field,
                            span,
                        });
                    }
                    Rule::Send => {
                        facts.sends.push(SendFact {
                            node: idx,
                            region: node.data.first().copied(),
                            span,
                        });
                    }
                    Rule::AssignField | Rule::IsoAssignField => {
                        let (recv, field) = match shape {
                            Some(ExprShape::AssignField { recv, field }) => {
                                (recv.clone(), Some(field.clone()))
                            }
                            _ => (None, None),
                        };
                        facts.field_assigns.push(FieldAssignFact {
                            node: idx,
                            recv,
                            field,
                            span,
                        });
                    }
                    Rule::IfDisconnected => {
                        if let Some(ExprShape::Disconnect { a, b }) = shape {
                            facts.disconnects.push(DisconnectFact {
                                node: idx,
                                a: a.clone(),
                                b: b.clone(),
                                region: node.data.first().copied(),
                                span,
                            });
                        }
                    }
                    _ => {}
                }
            }
            facts
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::CheckerOptions;

    fn facts_of(src: &str) -> Vec<FnFlowFacts> {
        let checked =
            crate::check_source(src, &CheckerOptions::default()).unwrap_or_else(|e| panic!("{e}"));
        flow_facts(&checked)
    }

    #[test]
    fn take_send_and_reassign_are_recorded() {
        let all = facts_of(
            "struct data { value: int }
             struct sll_node { iso payload : data; iso next : sll_node? }
             struct sll { iso hd : sll_node? }
             def pop_and_ship(l : sll) : unit {
               let some(n) = take(l.hd) in { send(n); } else { unit; };
               unit
             }
             def repair(l : sll, n : sll_node) : unit consumes n {
               l.hd = some(n);
             }",
        );
        assert_eq!(all.len(), 2);
        let pop = &all[0];
        assert_eq!(pop.func.as_str(), "pop_and_ship");
        assert_eq!(pop.takes.len(), 1);
        assert_eq!(pop.takes[0].recv.as_ref().map(|s| s.as_str()), Some("l"));
        assert_eq!(pop.takes[0].field.as_ref().map(|s| s.as_str()), Some("hd"));
        assert!(pop.takes[0].region.is_some());
        assert_eq!(pop.sends.len(), 1);
        // The send discharges the region the take created.
        assert_eq!(pop.sends[0].region, pop.takes[0].region);
        assert!(pop.sends[0].node > pop.takes[0].node, "send follows take");

        let repair = &all[1];
        assert_eq!(repair.field_assigns.len(), 1);
        assert_eq!(
            repair.field_assigns[0].field.as_ref().map(|s| s.as_str()),
            Some("hd")
        );
    }

    #[test]
    fn disconnect_roots_are_recorded() {
        let all = facts_of(
            "struct data { value: int }
             struct dll_node { iso payload : data; next : dll_node; prev : dll_node }
             def probe(n : dll_node) : int {
               let m = n.next;
               if disconnected(m, n) { 1 } else { 2 }
             }",
        );
        let probe = &all[0];
        assert_eq!(probe.disconnects.len(), 1);
        assert_eq!(probe.disconnects[0].a.as_str(), "m");
        assert_eq!(probe.disconnects[0].b.as_str(), "n");
        assert!(probe.disconnects[0].region.is_some());
    }
}
