//! Bounded backtracking search over virtual transformations (§4.6).
//!
//! When the liveness oracle fails to unify branch contexts, the checker
//! falls back to exhaustive search: breadth-first exploration of the
//! context space reachable by focus/unfocus/explore/retract/attach/weaken.
//! The space is finite because typeable iso-field accesses are limited to
//! fields of currently declared variables, but it is exponential in the
//! number of variables in scope — exactly the worst case the paper
//! describes. The `search_heuristics` experiment (E5) measures this
//! blowup by disabling the oracle.

use std::collections::{BTreeMap, HashMap, VecDeque};

use fearless_syntax::Type;

use crate::ctx::{RegionId, TypeState};
use crate::env::Globals;
use crate::unify::congruent;
use crate::vir::{self, VirKind, VirStep};

/// Move-ordering hints for the backtracking search, derived from the
/// analysis layer's redundancy statistics: step kinds that frequently turn
/// out to be elidable (`FA001`) are tried *last*, so the breadth-first
/// frontier reaches useful states sooner without losing completeness.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SearchHints {
    /// Step kinds to demote to the end of the move ordering.
    pub demote: std::collections::BTreeSet<VirKind>,
}

impl SearchHints {
    /// Hints demoting the given step kinds.
    pub fn demoting(kinds: impl IntoIterator<Item = VirKind>) -> Self {
        SearchHints {
            demote: kinds.into_iter().collect(),
        }
    }

    /// Whether the hints are a no-op.
    pub fn is_empty(&self) -> bool {
        self.demote.is_empty()
    }
}

/// Counters describing one search run, reported to the instrumentation
/// layer and to the golden-counter regression tests. `nodes` is exactly
/// the "states visited" measure that [`find_common_counted`] returns and
/// that the node budget is charged against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// States expanded (inserted into the explored set).
    pub nodes: u64,
    /// States dequeued but already explored — abandoned frontier entries,
    /// the BFS analogue of backtracking.
    pub backtracks: u64,
    /// Successor states pushed onto a frontier.
    pub enqueued: u64,
    /// Cross-frontier rename attempts on canonical-key matches.
    pub unify_attempts: u64,
    /// Rename attempts that failed congruence validation.
    pub unify_failures: u64,
    /// Whether the node budget ran out before a common form was found.
    pub exhausted: bool,
}

impl SearchStats {
    /// Accumulates another run's counters into this one.
    pub fn absorb(&mut self, other: &SearchStats) {
        self.nodes += other.nodes;
        self.backtracks += other.backtracks;
        self.enqueued += other.enqueued;
        self.unify_attempts += other.unify_attempts;
        self.unify_failures += other.unify_failures;
        self.exhausted |= other.exhausted;
    }
}

/// Result of a successful search: transformation scripts bringing each side
/// to a common (congruent-up-to-renaming) context, plus the rename to apply
/// to side B.
#[derive(Debug, Clone)]
pub struct CommonForm {
    /// Steps for side A.
    pub steps_a: Vec<VirStep>,
    /// Steps for side B (before the final rename).
    pub steps_b: Vec<VirStep>,
    /// Final rename mapping B's regions onto A's.
    pub rename_b: Vec<(RegionId, RegionId)>,
}

/// Searches for a common context reachable from both `a` and `b`.
///
/// Returns `None` when the node budget is exhausted without finding one.
pub fn find_common(
    globals: &Globals,
    a: &TypeState,
    b: &TypeState,
    budget: usize,
) -> Option<CommonForm> {
    find_common_counted(globals, a, b, budget).0
}

/// Like [`find_common`], also returning the number of states visited
/// (experiment E5's state-space measure).
pub fn find_common_counted(
    globals: &Globals,
    a: &TypeState,
    b: &TypeState,
    budget: usize,
) -> (Option<CommonForm>, usize) {
    find_common_with_hints(globals, a, b, budget, &SearchHints::default())
}

/// Like [`find_common_counted`], with move-ordering hints: demoted step
/// kinds are enqueued after all other candidates at each expansion. The
/// search space is unchanged (same completeness), only the visit order.
pub fn find_common_with_hints(
    globals: &Globals,
    a: &TypeState,
    b: &TypeState,
    budget: usize,
    hints: &SearchHints,
) -> (Option<CommonForm>, usize) {
    let (found, stats) = find_common_stats(globals, a, b, budget, hints);
    (found, stats.nodes as usize)
}

/// Like [`find_common_with_hints`], returning full [`SearchStats`] instead
/// of only the visited-node count. This is the primitive the others wrap;
/// the search itself is identical (same expansion order, same budget
/// accounting).
pub fn find_common_stats(
    globals: &Globals,
    a: &TypeState,
    b: &TypeState,
    budget: usize,
    hints: &SearchHints,
) -> (Option<CommonForm>, SearchStats) {
    let mut explored_a: HashMap<String, (TypeState, Vec<VirStep>)> = HashMap::new();
    let mut explored_b: HashMap<String, (TypeState, Vec<VirStep>)> = HashMap::new();
    let mut queue_a: VecDeque<(TypeState, Vec<VirStep>)> = VecDeque::new();
    let mut queue_b: VecDeque<(TypeState, Vec<VirStep>)> = VecDeque::new();
    queue_a.push_back((a.clone(), Vec::new()));
    queue_b.push_back((b.clone(), Vec::new()));
    let mut stats = SearchStats::default();

    while !queue_a.is_empty() || !queue_b.is_empty() {
        match expand_one(
            globals,
            &mut queue_a,
            &mut explored_a,
            &explored_b,
            true,
            &mut stats,
            budget,
            hints,
        ) {
            Expansion::Found(found) => return (Some(found), stats),
            Expansion::Exhausted => return (None, stats),
            Expansion::Continue => {}
        }
        match expand_one(
            globals,
            &mut queue_b,
            &mut explored_b,
            &explored_a,
            false,
            &mut stats,
            budget,
            hints,
        ) {
            Expansion::Found(found) => return (Some(found), stats),
            Expansion::Exhausted => return (None, stats),
            Expansion::Continue => {}
        }
    }
    (None, stats)
}

enum Expansion {
    Found(CommonForm),
    Exhausted,
    Continue,
}

#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn expand_one(
    globals: &Globals,
    queue: &mut VecDeque<(TypeState, Vec<VirStep>)>,
    explored: &mut HashMap<String, (TypeState, Vec<VirStep>)>,
    other: &HashMap<String, (TypeState, Vec<VirStep>)>,
    is_a: bool,
    stats: &mut SearchStats,
    budget: usize,
    hints: &SearchHints,
) -> Expansion {
    let Some((st, steps)) = queue.pop_front() else {
        return Expansion::Continue;
    };
    let key = canonical_key(&st);
    if explored.contains_key(&key) {
        stats.backtracks += 1;
        return Expansion::Continue;
    }
    if let Some((other_st, other_steps)) = other.get(&key) {
        let (st_a, steps_a, st_b, steps_b) = if is_a {
            (&st, steps.as_slice(), other_st, other_steps.as_slice())
        } else {
            (other_st, other_steps.as_slice(), &st, steps.as_slice())
        };
        stats.unify_attempts += 1;
        if let Some(rename) = rename_between(st_b, st_a) {
            return Expansion::Found(CommonForm {
                steps_a: steps_a.to_vec(),
                steps_b: steps_b.to_vec(),
                rename_b: rename,
            });
        }
        stats.unify_failures += 1;
    }
    explored.insert(key, (st.clone(), steps.clone()));
    stats.nodes += 1;
    if stats.nodes as usize >= budget {
        stats.exhausted = true;
        return Expansion::Exhausted;
    }
    let mut candidates = moves(globals, &st);
    if !hints.is_empty() {
        // Stable partition: demoted kinds last, relative order preserved.
        candidates.sort_by_key(|s| hints.demote.contains(&s.kind()));
    }
    for step in candidates {
        let mut next = st.clone();
        if vir::apply(&mut next, &step).is_ok() {
            let mut next_steps = steps.clone();
            next_steps.push(step);
            let key = canonical_key(&next);
            if !explored.contains_key(&key) {
                queue.push_back((next, next_steps));
                stats.enqueued += 1;
            }
        }
    }
    Expansion::Continue
}

/// Enumerates candidate virtual transformations from a state.
fn moves(globals: &Globals, st: &TypeState) -> Vec<VirStep> {
    let mut out = Vec::new();
    // Focus: any struct-typed variable whose region is held and empty.
    // Pseudo-variables (names starting with '#') encode search metadata and
    // are never mentioned by generated steps.
    for (x, b) in st.gamma.iter() {
        if x.as_str().starts_with('#') {
            continue;
        }
        let Some(r) = b.region else { continue };
        let Some(ctx) = st.heap.tracking(r) else {
            continue;
        };
        if matches!(b.ty, Type::Named(_)) && ctx.is_empty() && !ctx.pinned {
            out.push(VirStep::Focus { r, x: x.clone() });
        }
        if b.ty.is_reference() && st.heap.tracked_in(x) != Some(r) {
            out.push(VirStep::Invalidate {
                x: x.clone(),
                fresh: RegionId(st.next_region),
            });
        }
    }
    for (r, ctx) in st.heap.iter() {
        for (x, vt) in &ctx.vars {
            // Unfocus.
            if vt.fields.is_empty() && !vt.pinned {
                out.push(VirStep::Unfocus { r, x: x.clone() });
            }
            // Explore each untracked iso field.
            if !vt.pinned {
                if let Some(sname) = st.gamma.get(x).and_then(|b| b.ty.struct_name()) {
                    if let Some(sdef) = globals.struct_def(sname) {
                        for fd in &sdef.fields {
                            if fd.iso && !vt.fields.contains_key(&fd.name) {
                                out.push(VirStep::Explore {
                                    r,
                                    x: x.clone(),
                                    f: fd.name.clone(),
                                    fresh: RegionId(st.next_region),
                                });
                            }
                        }
                    }
                }
            }
            // Retract tracked fields with empty held targets.
            for (f, target) in &vt.fields {
                if st
                    .heap
                    .tracking(*target)
                    .map(|t| t.is_empty() && !t.pinned)
                    .unwrap_or(false)
                {
                    out.push(VirStep::Retract {
                        r,
                        x: x.clone(),
                        f: f.clone(),
                        target: *target,
                    });
                }
            }
        }
    }
    // Attach any ordered pair of unpinned regions.
    let regions: Vec<RegionId> = st
        .heap
        .iter()
        .filter(|(_, c)| !c.pinned)
        .map(|(r, _)| r)
        .collect();
    for &from in &regions {
        for &to in &regions {
            if from != to {
                out.push(VirStep::Attach { from, to });
            }
        }
    }
    // Weaken any region.
    for &r in &regions {
        out.push(VirStep::Weaken { r });
    }
    out
}

/// Fresh-region-aware application: `Explore` in `moves` uses
/// `st.next_region` as the fresh id, which `vir::apply` validates.
///
/// Canonicalizes a state by renaming regions in order of first appearance
/// over (sorted Γ, then H), producing a hashable key that identifies states
/// up to alpha-renaming.
pub fn canonical_key(st: &TypeState) -> String {
    use std::fmt::Write as _;
    let map = canonical_map(st);
    let mut out = String::new();
    for (x, b) in st.gamma.iter() {
        let region = b
            .region
            .map(|r| {
                if st.heap.contains(r) {
                    format!("c{}", map[&r])
                } else {
                    "dangling".to_string()
                }
            })
            .unwrap_or_else(|| "-".to_string());
        let _ = write!(out, "{x}:{region}:{};", b.ty);
    }
    out.push('|');
    // Regions in canonical order.
    let mut regions: Vec<(u32, RegionId)> = st.heap.iter().map(|(r, _)| (map[&r], r)).collect();
    regions.sort();
    for (cid, r) in regions {
        let ctx = st.heap.tracking(r).expect("held");
        let _ = write!(out, "c{cid}{}⟨", if ctx.pinned { "p" } else { "" });
        for (x, vt) in &ctx.vars {
            let _ = write!(out, "{x}{}[", if vt.pinned { "p" } else { "" });
            for (f, t) in &vt.fields {
                if st.heap.contains(*t) {
                    let _ = write!(out, "{f}→c{},", map[t]);
                } else {
                    let _ = write!(out, "{f}→dangling,");
                }
            }
            out.push(']');
        }
        out.push('⟩');
    }
    out
}

/// Canonical numbering of held regions by first appearance.
fn canonical_map(st: &TypeState) -> BTreeMap<RegionId, u32> {
    let mut map: BTreeMap<RegionId, u32> = BTreeMap::new();
    let mut next = 0u32;
    let note = |r: RegionId, held: bool, map: &mut BTreeMap<RegionId, u32>, next: &mut u32| {
        if held && !map.contains_key(&r) {
            map.insert(r, *next);
            *next += 1;
        }
    };
    for (_, b) in st.gamma.iter() {
        if let Some(r) = b.region {
            note(r, st.heap.contains(r), &mut map, &mut next);
        }
    }
    for (r, ctx) in st.heap.iter() {
        note(r, true, &mut map, &mut next);
        for vt in ctx.vars.values() {
            for t in vt.fields.values() {
                note(*t, st.heap.contains(*t), &mut map, &mut next);
            }
        }
    }
    map
}

/// Computes the rename mapping `b`'s held regions onto `a`'s, assuming both
/// have the same canonical key. Returns `None` when the states are not
/// actually congruent after renaming (hash collision or key bug).
fn rename_between(b: &TypeState, a: &TypeState) -> Option<Vec<(RegionId, RegionId)>> {
    let map_a = canonical_map(a);
    let map_b = canonical_map(b);
    let inv_a: BTreeMap<u32, RegionId> = map_a.iter().map(|(r, c)| (*c, *r)).collect();
    let mut pairs = Vec::new();
    for (rb, cid) in &map_b {
        let ra = inv_a.get(cid)?;
        if rb != ra {
            pairs.push((*rb, *ra));
        }
    }
    // Validate by applying to a clone.
    let mut check = b.clone();
    vir::rename(&mut check, &pairs).ok()?;
    if congruent(&check, a) {
        Some(pairs)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::{Binding, TrackCtx};
    use crate::mode::CheckerMode;
    use fearless_syntax::{parse_program, Symbol};

    fn globals() -> Globals {
        let p = parse_program(
            "struct data { value: int }
             struct node { iso payload : data; iso next : node? }",
        )
        .unwrap();
        Globals::build(&p, CheckerMode::Tempered).unwrap()
    }

    fn state_with(vars: &[(&str, u32)]) -> TypeState {
        let mut st = TypeState::new();
        st.next_region = 100;
        for (name, region) in vars {
            let r = RegionId(*region);
            if !st.heap.contains(r) {
                st.heap.insert(r, TrackCtx::empty());
            }
            st.gamma.bind(
                Symbol::new(name),
                Binding {
                    region: Some(r),
                    ty: Type::named("node"),
                },
            );
        }
        st
    }

    #[test]
    fn canonical_key_ignores_ids() {
        let a = state_with(&[("x", 1), ("y", 2)]);
        let b = state_with(&[("x", 7), ("y", 3)]);
        assert_eq!(canonical_key(&a), canonical_key(&b));
        let c = state_with(&[("x", 1), ("y", 1)]);
        assert_ne!(canonical_key(&a), canonical_key(&c));
    }

    #[test]
    fn finds_trivial_common_form() {
        let g = globals();
        let a = state_with(&[("x", 1)]);
        let b = state_with(&[("x", 9)]);
        let found = find_common(&g, &a, &b, 10_000).expect("search succeeds");
        assert!(found.steps_a.is_empty());
        assert!(found.steps_b.is_empty());
        assert_eq!(found.rename_b, vec![(RegionId(9), RegionId(1))]);
    }

    #[test]
    fn finds_attach_to_unify() {
        // A: x,y same region. B: x,y different regions — search must attach.
        let g = globals();
        let a = state_with(&[("x", 1), ("y", 1)]);
        let b = state_with(&[("x", 2), ("y", 3)]);
        let found = find_common(&g, &a, &b, 50_000).expect("search succeeds");
        let total = found.steps_a.len() + found.steps_b.len();
        assert!(total >= 1, "needs at least one attach");
    }

    #[test]
    fn finds_focus_explore_alignment() {
        // A: x focused with `next` tracked. B: plain. Search should align
        // (either retract in A or focus+explore in B).
        let g = globals();
        let mut a = state_with(&[("x", 1)]);
        vir::focus(&mut a, RegionId(1), &Symbol::new("x")).unwrap();
        let fresh = a.fresh_region();
        vir::explore(
            &mut a,
            RegionId(1),
            &Symbol::new("x"),
            &Symbol::new("next"),
            fresh,
        )
        .unwrap();
        let b = state_with(&[("x", 5)]);
        let found = find_common(&g, &a, &b, 100_000).expect("search succeeds");
        let total = found.steps_a.len() + found.steps_b.len();
        assert!(total >= 1);
    }

    #[test]
    fn hints_preserve_completeness() {
        // Demoting every kind the solution needs must not lose it — only
        // the visit order changes.
        let g = globals();
        let a = state_with(&[("x", 1), ("y", 1)]);
        let b = state_with(&[("x", 2), ("y", 3)]);
        let hints = SearchHints::demoting([VirKind::Attach, VirKind::Weaken]);
        let (found, visited) = find_common_with_hints(&g, &a, &b, 50_000, &hints);
        assert!(found.is_some(), "hinted search still finds the common form");
        assert!(visited > 0);
    }

    #[test]
    fn hints_demote_reorders_frontier() {
        // With Focus demoted, a trivially-congruent pair is still found
        // immediately (no steps needed at all).
        let g = globals();
        let a = state_with(&[("x", 1)]);
        let b = state_with(&[("x", 9)]);
        let hints = SearchHints::demoting([VirKind::Focus]);
        let (found, _) = find_common_with_hints(&g, &a, &b, 10_000, &hints);
        let found = found.expect("search succeeds");
        assert!(found.steps_a.is_empty() && found.steps_b.is_empty());
    }

    #[test]
    fn stats_exact_counts_for_trivial_pair() {
        // Congruent-up-to-renaming inputs: side A expands its root (one
        // node), then side B's root dequeues, key-matches A's explored set,
        // and the rename validates. Exactly one node, no backtracks.
        let g = globals();
        let a = state_with(&[("x", 1)]);
        let b = state_with(&[("x", 9)]);
        let (found, stats) = find_common_stats(&g, &a, &b, 10_000, &SearchHints::default());
        assert!(found.is_some());
        assert_eq!(stats.nodes, 1);
        assert_eq!(stats.backtracks, 0);
        assert_eq!(stats.unify_attempts, 1);
        assert_eq!(stats.unify_failures, 0);
        assert!(!stats.exhausted);
    }

    #[test]
    fn stats_nodes_match_counted_visited() {
        let g = globals();
        let a = state_with(&[("x", 1), ("y", 1)]);
        let b = state_with(&[("x", 2), ("y", 3)]);
        let (found_c, visited) = find_common_counted(&g, &a, &b, 50_000);
        let (found_s, stats) = find_common_stats(&g, &a, &b, 50_000, &SearchHints::default());
        assert_eq!(found_c.is_some(), found_s.is_some());
        assert_eq!(stats.nodes as usize, visited);
        assert!(stats.enqueued >= stats.nodes - 1);
    }

    #[test]
    fn stats_flag_budget_exhaustion() {
        let g = globals();
        let mut a = state_with(&[("x", 1), ("y", 2)]);
        let mut b = state_with(&[("x", 3), ("y", 3)]);
        vir::focus(&mut a, RegionId(1), &Symbol::new("x")).unwrap();
        vir::focus(&mut b, RegionId(3), &Symbol::new("x")).unwrap();
        let (found, stats) = find_common_stats(&g, &a, &b, 1, &SearchHints::default());
        assert!(found.is_none());
        assert!(stats.exhausted);
        assert_eq!(stats.nodes, 1);
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let g = globals();
        let mut a = state_with(&[("x", 1), ("y", 2)]);
        let mut b = state_with(&[("x", 3), ("y", 3)]);
        // Make them genuinely different so a match needs some steps.
        vir::focus(&mut a, RegionId(1), &Symbol::new("x")).unwrap();
        vir::focus(&mut b, RegionId(3), &Symbol::new("x")).unwrap();
        assert!(find_common(&g, &a, &b, 1).is_none());
    }
}
