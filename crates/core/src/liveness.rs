//! Liveness analysis of variables, used as the unification oracle (§5.1).
//!
//! Unification of branch contexts is "the problem of inferring which linear
//! resources must be preserved to typecheck a given program suffix"; the
//! paper's checker employs liveness analysis of variables (and thereby of
//! the regions and tracked fields they inhabit) as the oracle that avoids
//! backtracking search in the common case.

use std::collections::{BTreeSet, HashMap};

use fearless_syntax::{Expr, ExprId, ExprKind, Symbol};

/// Per-expression liveness facts for one function body.
#[derive(Debug, Clone, Default)]
pub struct Liveness {
    live_after: HashMap<ExprId, BTreeSet<Symbol>>,
}

impl Liveness {
    /// Computes liveness for `body`. `always_live` (typically the
    /// function's non-consumed parameters, which must be intact at exit)
    /// are treated as live at every point.
    pub fn analyze(body: &Expr, always_live: &BTreeSet<Symbol>) -> Liveness {
        let mut lv = Liveness::default();
        let after = always_live.clone();
        lv.visit(body, &after);
        lv
    }

    /// The set of variables live immediately after expression `id`
    /// (empty if unknown).
    pub fn live_after(&self, id: ExprId) -> BTreeSet<Symbol> {
        self.live_after.get(&id).cloned().unwrap_or_default()
    }

    /// Whether `x` is live after expression `id`.
    pub fn is_live_after(&self, id: ExprId, x: &Symbol) -> bool {
        self.live_after
            .get(&id)
            .map(|s| s.contains(x))
            .unwrap_or(false)
    }

    /// Returns the live-before set of `e` given the live-after set,
    /// recording `after` for `e.id`.
    fn visit(&mut self, e: &Expr, after: &BTreeSet<Symbol>) -> BTreeSet<Symbol> {
        self.live_after.insert(e.id, after.clone());
        match &e.kind {
            ExprKind::Unit
            | ExprKind::Int(_)
            | ExprKind::Bool(_)
            | ExprKind::SelfRef
            | ExprKind::NoneOf
            | ExprKind::Recv(_) => after.clone(),
            ExprKind::Var(x) => {
                let mut s = after.clone();
                s.insert(x.clone());
                s
            }
            ExprKind::Field(recv, _) | ExprKind::Take(recv, _) => self.visit(recv, after),
            ExprKind::AssignVar(x, rhs) => {
                let mut killed = after.clone();
                killed.remove(x);
                self.visit(rhs, &killed)
            }
            ExprKind::AssignField(recv, _, rhs) => {
                let mid = self.visit(rhs, after);
                self.visit(recv, &mid)
            }
            ExprKind::Let { var, init, body } => {
                let mut body_before = self.visit(body, after);
                body_before.remove(var);
                self.visit(init, &body_before)
            }
            ExprKind::LetSome {
                var,
                init,
                then_branch,
                else_branch,
            } => {
                let mut then_before = self.visit(then_branch, after);
                then_before.remove(var);
                let else_before = self.visit(else_branch, after);
                let mut merged = then_before;
                merged.extend(else_before);
                self.visit(init, &merged)
            }
            ExprKind::Seq(items) => {
                let mut cur = after.clone();
                for item in items.iter().rev() {
                    cur = self.visit(item, &cur);
                }
                cur
            }
            ExprKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let mut merged = self.visit(then_branch, after);
                merged.extend(self.visit(else_branch, after));
                self.visit(cond, &merged)
            }
            ExprKind::IfDisconnected {
                a,
                b,
                then_branch,
                else_branch,
            } => {
                let mut merged = self.visit(then_branch, after);
                merged.extend(self.visit(else_branch, after));
                merged.insert(a.clone());
                merged.insert(b.clone());
                merged
            }
            ExprKind::While { cond, body } => {
                // Fixpoint: live-before(loop) = live(cond, after ∪ live(body, X)).
                let mut x: BTreeSet<Symbol> = BTreeSet::new();
                loop {
                    let body_before = self.visit(body, &x);
                    let mut cond_after = after.clone();
                    cond_after.extend(body_before);
                    let next = self.visit(cond, &cond_after);
                    if next == x {
                        // Re-record the loop node's own after set (the
                        // visits above overwrote children only).
                        self.live_after.insert(e.id, after.clone());
                        return next;
                    }
                    x = next;
                }
            }
            ExprKind::New(_, args) | ExprKind::Call(_, args) => {
                let mut cur = after.clone();
                for a in args.iter().rev() {
                    cur = self.visit(a, &cur);
                }
                cur
            }
            ExprKind::SomeOf(inner)
            | ExprKind::IsNone(inner)
            | ExprKind::IsSome(inner)
            | ExprKind::Send(inner)
            | ExprKind::Unary(_, inner) => self.visit(inner, after),
            ExprKind::Binary(_, lhs, rhs) => {
                let mid = self.visit(rhs, after);
                self.visit(lhs, &mid)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fearless_syntax::parse_expr;

    fn set(names: &[&str]) -> BTreeSet<Symbol> {
        names.iter().map(Symbol::new).collect()
    }

    fn find(e: &Expr, pred: &dyn Fn(&Expr) -> bool) -> Expr {
        let mut result: Option<Expr> = None;
        e.walk(&mut |n| {
            if result.is_none() && pred(n) {
                result = Some(n.clone());
            }
        });
        result.expect("no matching node")
    }

    #[test]
    fn variable_dead_after_last_use() {
        let e = parse_expr("{ let x = 1; let y = x + 1; y }").unwrap();
        let lv = Liveness::analyze(&e, &BTreeSet::new());
        // After the `x + 1` initializer, x is dead, y is not yet defined.
        let init = find(&e, &|n| {
            matches!(&n.kind, ExprKind::Binary(fearless_syntax::BinOp::Add, _, _))
        });
        assert!(!lv.is_live_after(init.id, &Symbol::new("x")));
    }

    #[test]
    fn loop_keeps_variables_live() {
        let e = parse_expr(
            "{ let n = 10; let acc = 0; while (n > 0) { acc = acc + n; n = n - 1 }; acc }",
        )
        .unwrap();
        let lv = Liveness::analyze(&e, &BTreeSet::new());
        // Inside the loop body, after `acc = acc + n`, both acc (used by
        // next iteration / result) and n (decrement + cond) are live.
        let assign = find(
            &e,
            &|n| matches!(&n.kind, ExprKind::AssignVar(x, _) if x.as_str() == "acc"),
        );
        let live = lv.live_after(assign.id);
        assert!(live.contains("acc"), "{live:?}");
        assert!(live.contains("n"), "{live:?}");
    }

    #[test]
    fn always_live_parameters_stay_live() {
        let e = parse_expr("{ 1 }").unwrap();
        let lv = Liveness::analyze(&e, &set(&["p"]));
        assert!(lv.is_live_after(e.id, &Symbol::new("p")));
    }

    #[test]
    fn branches_merge() {
        let e = parse_expr("{ let a = 1; let b = 2; if (true) { a } else { b } }").unwrap();
        let lv = Liveness::analyze(&e, &BTreeSet::new());
        let cond = find(&e, &|n| matches!(&n.kind, ExprKind::Bool(true)));
        let live = lv.live_after(cond.id);
        assert!(live.contains("a"));
        assert!(live.contains("b"));
    }

    #[test]
    fn if_disconnected_roots_live_before() {
        let e = parse_expr("{ let t = x; if disconnected(t, h) { 1 } else { 2 } }").unwrap();
        let lv = Liveness::analyze(&e, &BTreeSet::new());
        // After the whole if-disconnected nothing is live.
        let disc = find(&e, &|n| matches!(&n.kind, ExprKind::IfDisconnected { .. }));
        assert!(lv.live_after(disc.id).is_empty());
    }

    #[test]
    fn assignment_kills() {
        let e = parse_expr("{ let x = 1; x = 2; x }").unwrap();
        let lv = Liveness::analyze(&e, &BTreeSet::new());
        // After `let x = 1`'s initializer (the literal 1), x is NOT live
        // because it is reassigned before use.
        let one = find(&e, &|n| matches!(&n.kind, ExprKind::Int(1)));
        assert!(!lv.is_live_after(one.id, &Symbol::new("x")));
    }
}
