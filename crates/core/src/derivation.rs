//! Typing derivations: the prover's output, independently replayable by the
//! verifier crate (§5's prover–verifier architecture).
//!
//! A derivation is a tree of [`DerivNode`]s. Every node records the full
//! judgment `H; Γ ⊢ e : r τ ⊣ H'; Γ'` — its input and output [`TypeState`]s
//! plus the result region and type — and its premises as *chains* of child
//! node indices. Virtual transformations (TS1 applications) appear as their
//! own leaf nodes with [`Rule::Vir`], so the verifier can replay and check
//! every context manipulation the prover performed.

use fearless_syntax::{ExprId, Symbol, Type};

use crate::ctx::{RegionId, TypeState};
use crate::vir::VirStep;

/// Result of a typing judgment: the region (for reference-typed values) and
/// the type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ValInfo {
    /// Region of the value; `None` for value types.
    pub region: Option<RegionId>,
    /// The value's type.
    pub ty: Type,
}

impl ValInfo {
    /// A unit-typed result.
    pub fn unit() -> Self {
        ValInfo {
            region: None,
            ty: Type::Unit,
        }
    }
}

/// The syntax-directed rules of Fig. 10/13, plus `Vir` for TS1 steps.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Rule {
    UnitLit,
    IntLit,
    BoolLit,
    Var,
    Field,
    IsoField,
    AssignVar,
    AssignField,
    IsoAssignField,
    Take,
    Let,
    LetSome,
    Seq,
    If,
    IfDisconnected,
    While,
    New,
    SomeOf,
    NoneOf,
    IsNone,
    IsSome,
    Call,
    Send,
    Recv,
    Binary,
    Unary,
    /// A virtual transformation (TS1) leaf node.
    Vir,
}

/// Extra information recorded for [`Rule::Call`] nodes.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CallInfo {
    /// Callee name.
    pub callee: Option<Symbol>,
    /// Caller regions consumed by `consumes` parameters.
    pub consumed: Vec<RegionId>,
    /// `(output class index, region)` for each freshly created output
    /// class region.
    pub created: Vec<(usize, RegionId)>,
}

/// A node in a typing derivation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DerivNode {
    /// Which rule was applied.
    pub rule: Rule,
    /// The expression this node types (absent for `Vir` nodes).
    pub expr: Option<ExprId>,
    /// The virtual transformation (present only for `Vir` nodes).
    pub vir: Option<VirStep>,
    /// Static state before the rule.
    pub input: TypeState,
    /// Static state after the rule.
    pub output: TypeState,
    /// The judgment's result (absent for `Vir` nodes).
    pub result: Option<ValInfo>,
    /// Premise chains. Within a chain, node `i+1`'s input follows node `i`'s
    /// output; how chains relate to the node's own input/output is
    /// rule-specific (e.g. `If` has a condition chain and two branch
    /// chains that both start at the condition chain's output).
    pub chains: Vec<Vec<usize>>,
    /// Rule-specific region payload (e.g. the fresh region of `New`, the
    /// consumed region of `Send`, `[r, ra, rb]` for `IfDisconnected`).
    pub data: Vec<RegionId>,
    /// Call summary for `Call` nodes.
    pub call: Option<CallInfo>,
}

/// A complete derivation for one function.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Derivation {
    /// The function this derivation types.
    pub func: Symbol,
    /// Input state built from the signature (T0's premise).
    pub input: TypeState,
    /// Output state after body checking and exit unification.
    pub output: TypeState,
    /// The body's result.
    pub result: ValInfo,
    /// The root chain: body node plus exit-unification `Vir` nodes.
    pub root_chain: Vec<usize>,
    /// Arena of nodes; indices in chains point here.
    pub nodes: Vec<DerivNode>,
    /// The input regions assigned to each reference parameter, in
    /// parameter order (`None` for value-typed parameters).
    pub param_regions: Vec<Option<RegionId>>,
    /// Total number of virtual-transformation steps (for reporting).
    pub vir_steps: usize,
    /// States visited by backtracking search during checking (zero when
    /// the liveness oracle handled every join).
    pub search_nodes: usize,
}

impl Derivation {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the derivation is empty (never true for real functions).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over all `Vir` steps in the derivation.
    pub fn vir_iter(&self) -> impl Iterator<Item = &VirStep> {
        self.nodes.iter().filter_map(|n| n.vir.as_ref())
    }

    /// Iterates over every premise chain: the root chain plus each rule
    /// node's sub-chains. Every node index appears in exactly one chain.
    pub fn all_chains(&self) -> impl Iterator<Item = &[usize]> {
        std::iter::once(self.root_chain.as_slice()).chain(
            self.nodes
                .iter()
                .flat_map(|n| n.chains.iter().map(Vec::as_slice)),
        )
    }

    /// Maximal runs of consecutive `Vir` nodes within the chains. Each run
    /// is a sequence of node indices whose steps rewrite the context
    /// between two rule applications; the analysis layer checks runs for
    /// steps whose elision still replays.
    pub fn vir_runs(&self) -> Vec<Vec<usize>> {
        let mut runs = Vec::new();
        for chain in self.all_chains() {
            let mut cur: Vec<usize> = Vec::new();
            for &idx in chain {
                if self.nodes[idx].rule == Rule::Vir {
                    cur.push(idx);
                } else if !cur.is_empty() {
                    runs.push(std::mem::take(&mut cur));
                }
            }
            if !cur.is_empty() {
                runs.push(cur);
            }
        }
        runs
    }

    /// Renders the derivation as an indented typing script: every rule
    /// application with its judgment, and every TS1 step in order.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "derivation for `{}`", self.func);
        let _ = writeln!(out, "  input:  {}", self.input);
        self.render_chain(&self.root_chain, 1, &mut out);
        let _ = writeln!(out, "  output: {}", self.output);
        let region = self
            .result
            .region
            .map(|r| format!("{r} "))
            .unwrap_or_default();
        let _ = writeln!(out, "  result: {region}{}", self.result.ty);
        out
    }

    fn render_chain(&self, chain: &[usize], depth: usize, out: &mut String) {
        use std::fmt::Write as _;
        let pad = "  ".repeat(depth);
        for &idx in chain {
            let node = &self.nodes[idx];
            match (&node.vir, &node.result) {
                (Some(step), _) => {
                    let _ = writeln!(out, "{pad}⇝ {step}");
                }
                (None, Some(result)) => {
                    let region = result.region.map(|r| format!("{r} ")).unwrap_or_default();
                    let expr = node.expr.map(|e| format!(" @{e}")).unwrap_or_default();
                    let _ = writeln!(out, "{pad}{:?}{expr} : {region}{}", node.rule, result.ty);
                    for sub in &node.chains {
                        self.render_chain(sub, depth + 1, out);
                    }
                }
                (None, None) => {
                    let _ = writeln!(out, "{pad}{:?}", node.rule);
                }
            }
        }
    }
}

/// Incremental builder used by the checker.
#[derive(Debug, Default)]
pub struct DerivBuilder {
    nodes: Vec<DerivNode>,
    vir_steps: usize,
    /// Search states visited (accumulated by the checker).
    pub search_nodes: usize,
}

impl DerivBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        DerivBuilder::default()
    }

    /// Records a virtual-transformation leaf node and returns its index.
    pub fn push_vir(&mut self, step: VirStep, input: TypeState, output: TypeState) -> usize {
        self.vir_steps += 1;
        self.nodes.push(DerivNode {
            rule: Rule::Vir,
            expr: None,
            vir: Some(step),
            input,
            output,
            result: None,
            chains: Vec::new(),
            data: Vec::new(),
            call: None,
        });
        self.nodes.len() - 1
    }

    /// Records a rule node and returns its index.
    #[allow(clippy::too_many_arguments)]
    pub fn push_rule(
        &mut self,
        rule: Rule,
        expr: ExprId,
        input: TypeState,
        output: TypeState,
        result: ValInfo,
        chains: Vec<Vec<usize>>,
        data: Vec<RegionId>,
        call: Option<CallInfo>,
    ) -> usize {
        self.nodes.push(DerivNode {
            rule,
            expr: Some(expr),
            vir: None,
            input,
            output,
            result: Some(result),
            chains,
            data,
            call,
        });
        self.nodes.len() - 1
    }

    /// Finalizes the derivation.
    pub fn finish(
        self,
        func: Symbol,
        input: TypeState,
        output: TypeState,
        result: ValInfo,
        root_chain: Vec<usize>,
        param_regions: Vec<Option<RegionId>>,
    ) -> Derivation {
        Derivation {
            func,
            input,
            output,
            result,
            root_chain,
            nodes: self.nodes,
            param_regions,
            vir_steps: self.vir_steps,
            search_nodes: self.search_nodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_counts_vir_steps() {
        let mut b = DerivBuilder::new();
        let st = TypeState::new();
        b.push_vir(VirStep::Weaken { r: RegionId(0) }, st.clone(), st.clone());
        b.push_rule(
            Rule::UnitLit,
            ExprId(0),
            st.clone(),
            st.clone(),
            ValInfo::unit(),
            vec![vec![0]],
            vec![],
            None,
        );
        let d = b.finish(
            "f".into(),
            st.clone(),
            st.clone(),
            ValInfo::unit(),
            vec![1],
            vec![],
        );
        assert_eq!(d.len(), 2);
        assert_eq!(d.vir_steps, 1);
        assert_eq!(d.vir_iter().count(), 1);
    }
}
