//! Checker-internal helpers: greedy virtual-transformation insertion
//! (the decision procedure of §4.6) and liveness-driven context
//! normalization (§5.1).

use std::collections::BTreeSet;

use fearless_syntax::{Span, Symbol};

use crate::ctx::{RegionId, TypeState};
use crate::derivation::DerivBuilder;
use crate::error::TypeError;
use crate::vir::{self, VirStep};

/// A set of variables treated as live.
pub type LiveSet = BTreeSet<Symbol>;

/// A set of regions protected from weakening/retraction.
pub type Protect = BTreeSet<RegionId>;

/// Applies one virtual transformation, recording it as a derivation node
/// appended to `chain`.
pub fn record_vir(
    deriv: &mut DerivBuilder,
    st: &mut TypeState,
    step: VirStep,
    chain: &mut Vec<usize>,
    span: Span,
) -> Result<(), TypeError> {
    let input = st.clone();
    vir::apply(st, &step).map_err(|m| TypeError::new(m, span))?;
    let idx = deriv.push_vir(step, input, st.clone());
    chain.push(idx);
    Ok(())
}

/// Computes the set of regions that must be preserved: regions of live
/// variables, explicitly protected regions, and targets of tracked fields
/// of live variables (transitively).
pub fn live_regions(st: &TypeState, live: &LiveSet, protect: &Protect) -> BTreeSet<RegionId> {
    let mut set: BTreeSet<RegionId> = protect.clone();
    for (x, b) in st.gamma.iter() {
        if live.contains(x) {
            if let Some(r) = b.region {
                set.insert(r);
            }
        }
    }
    // Close over tracked-field targets of variables in kept regions — all
    // of them, not just live ones: a protected region may host a dead
    // variable (e.g. the branch result) whose tracked fields must not be
    // dangled by premature weakening; the retract fixpoint dissolves them
    // in dependency order instead.
    loop {
        let mut changed = false;
        for (r, ctx) in st.heap.iter() {
            if !set.contains(&r) {
                continue;
            }
            for vt in ctx.vars.values() {
                for target in vt.fields.values() {
                    if st.heap.contains(*target) && set.insert(*target) {
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return set;
        }
    }
}

/// Whether region `r` can be dropped: it is held, unprotected, and no live
/// variable is bound to it.
pub fn can_drop_region(st: &TypeState, r: RegionId, live: &LiveSet, protect: &Protect) -> bool {
    if !st.heap.contains(r) || protect.contains(&r) {
        return false;
    }
    !st.gamma
        .iter()
        .any(|(x, b)| b.region == Some(r) && live.contains(x))
}

/// Liveness-driven normalization: retracts tracked fields whose targets are
/// dead and empty, unfocuses variables with no tracked fields, and weakens
/// dead regions. Produces the canonical form used by branch unification
/// (§5.1's oracle).
pub fn normalize(
    deriv: &mut DerivBuilder,
    st: &mut TypeState,
    live: &LiveSet,
    protect: &Protect,
    chain: &mut Vec<usize>,
    span: Span,
) -> Result<(), TypeError> {
    loop {
        let mut changed = false;

        // 1. Retract tracked fields whose targets are empty and host no
        //    live variables: the canonical form leaves such fields
        //    untracked (they can be re-explored on demand).
        let mut retracts: Vec<(RegionId, Symbol, Symbol, RegionId)> = Vec::new();
        for (r, ctx) in st.heap.iter() {
            for (x, vt) in &ctx.vars {
                for (f, target) in &vt.fields {
                    if st
                        .heap
                        .tracking(*target)
                        .map(|t| t.is_empty() && !t.pinned)
                        .unwrap_or(false)
                        && can_drop_region(st, *target, live, protect)
                    {
                        retracts.push((r, x.clone(), f.clone(), *target));
                    }
                }
            }
        }
        for (r, x, f, target) in retracts {
            // Re-validate: earlier steps this pass may have changed things.
            if st.heap.tracked_field(&x, &f) == Some(target)
                && st.heap.contains(target)
                && st
                    .heap
                    .tracking(target)
                    .map(|t| t.is_empty())
                    .unwrap_or(false)
            {
                record_vir(deriv, st, VirStep::Retract { r, x, f, target }, chain, span)?;
                changed = true;
            }
        }

        // 2. Remove dangling tracked fields of dead variables: drop the
        //    whole (dead) region below in step 3; nothing to do here.

        // 3. Unfocus variables with no tracked fields.
        let mut unfocuses: Vec<(RegionId, Symbol)> = Vec::new();
        for (r, ctx) in st.heap.iter() {
            for (x, vt) in &ctx.vars {
                if vt.fields.is_empty() && !vt.pinned {
                    unfocuses.push((r, x.clone()));
                }
            }
        }
        for (r, x) in unfocuses {
            record_vir(deriv, st, VirStep::Unfocus { r, x }, chain, span)?;
            changed = true;
        }

        // 4. Weaken dead regions (no live vars, unprotected). A dead region
        //    may still track dead variables with unretractable fields —
        //    weakening drops them while preserving field-target capabilities.
        let keep = live_regions(st, live, protect);
        let dead: Vec<RegionId> = st
            .heap
            .iter()
            .map(|(r, _)| r)
            .filter(|r| !keep.contains(r) && can_drop_region(st, *r, live, protect))
            .collect();
        for r in dead {
            record_vir(deriv, st, VirStep::Weaken { r }, chain, span)?;
            changed = true;
        }

        // 5. Invalidate dead, untracked reference variables still bound to
        //    held regions: pure Γ-weakening that lets branch unification
        //    ignore dead bindings.
        let dead_vars: Vec<Symbol> = st
            .gamma
            .iter()
            .filter(|(x, b)| {
                !live.contains(*x)
                    && b.region.map(|r| st.heap.contains(r)).unwrap_or(false)
                    && st.heap.tracked_in(x).is_none()
            })
            .map(|(x, _)| x.clone())
            .collect();
        for x in dead_vars {
            let fresh = st.fresh_region();
            record_vir(deriv, st, VirStep::Invalidate { x, fresh }, chain, span)?;
            changed = true;
        }

        if !changed {
            return Ok(());
        }
    }
}

/// Relabels every dangling mention in `st` (Γ bindings and tracked-field
/// targets whose region is no longer held) with fresh never-held ids, so a
/// subsequent `Rename` cannot collide with them.
pub fn scrub_dangling(
    deriv: &mut DerivBuilder,
    st: &mut TypeState,
    chain: &mut Vec<usize>,
    span: Span,
) -> Result<(), TypeError> {
    let dangling_vars: Vec<Symbol> = st
        .gamma
        .iter()
        .filter(|(_, b)| b.region.map(|r| !st.heap.contains(r)).unwrap_or(false))
        .map(|(x, _)| x.clone())
        .collect();
    for x in dangling_vars {
        let fresh = st.fresh_region();
        record_vir(deriv, st, VirStep::Invalidate { x, fresh }, chain, span)?;
    }
    let mut dangling_fields: Vec<(RegionId, Symbol, Symbol)> = Vec::new();
    for (r, ctx) in st.heap.iter() {
        for (x, vt) in &ctx.vars {
            for (f, t) in &vt.fields {
                if !st.heap.contains(*t) {
                    dangling_fields.push((r, x.clone(), f.clone()));
                }
            }
        }
    }
    for (r, x, f) in dangling_fields {
        let fresh = st.fresh_region();
        record_vir(
            deriv,
            st,
            VirStep::ScrubField { r, x, f, fresh },
            chain,
            span,
        )?;
    }
    Ok(())
}

/// Empties region `r`'s tracking context so it satisfies the empty-context
/// premise of T16-Send, T15-IfDisconnected, and T9-Application: recursively
/// retracts all tracked fields (their target capabilities are consumed —
/// correct, since the contents travel with the region) and unfocuses all
/// variables.
///
/// # Errors
///
/// Fails if a tracked field is dangling (must be reassigned first) or if a
/// target region still hosts live variables (the contents are separately
/// accessible, so surrendering the region would be unsound to allow
/// silently).
pub fn discharge_region(
    deriv: &mut DerivBuilder,
    st: &mut TypeState,
    r: RegionId,
    live: &LiveSet,
    protect: &Protect,
    chain: &mut Vec<usize>,
    span: Span,
) -> Result<(), TypeError> {
    let Some(ctx) = st.heap.tracking(r) else {
        return Err(TypeError::new(
            format!("region {r} is no longer held (already consumed)"),
            span,
        ));
    };
    if ctx.pinned {
        return Err(TypeError::new(
            format!("region {r} is pinned; its tracking context cannot be discharged"),
            span,
        ));
    }
    let vars: Vec<Symbol> = ctx.vars.keys().cloned().collect();
    for x in vars {
        let fields: Vec<(Symbol, RegionId)> = st
            .heap
            .tracking(r)
            .and_then(|c| c.vars.get(&x))
            .map(|vt| vt.fields.iter().map(|(f, t)| (f.clone(), *t)).collect())
            .unwrap_or_default();
        for (f, target) in fields {
            if !st.heap.contains(target) {
                return Err(TypeError::new(
                    format!(
                        "iso field {x}.{f} was invalidated and must be reassigned before \
                         this region can be surrendered"
                    ),
                    span,
                ));
            }
            if protect.contains(&target) {
                return Err(TypeError::new(
                    format!(
                        "iso field {x}.{f} points to a region that is still needed; it \
                         cannot be retracted here"
                    ),
                    span,
                ));
            }
            if let Some(live_var) = st
                .gamma
                .iter()
                .find(|(v, b)| b.region == Some(target) && live.contains(*v))
                .map(|(v, _)| v.clone())
            {
                return Err(TypeError::new(
                    format!(
                        "cannot surrender this region: the contents of {x}.{f} are still \
                         accessible through live variable {live_var}"
                    ),
                    span,
                ));
            }
            discharge_region(deriv, st, target, live, protect, chain, span)?;
            record_vir(
                deriv,
                st,
                VirStep::Retract {
                    r,
                    x: x.clone(),
                    f,
                    target,
                },
                chain,
                span,
            )?;
        }
        record_vir(deriv, st, VirStep::Unfocus { r, x: x.clone() }, chain, span)?;
    }
    Ok(())
}

/// Removes variable `x` from tracking contexts, for scope exit or
/// reassignment. Retracts droppable tracked fields; if some fields cannot
/// be retracted, falls back to weakening `x`'s entire region when that
/// region hosts no other live variables.
pub fn discharge_var(
    deriv: &mut DerivBuilder,
    st: &mut TypeState,
    x: &Symbol,
    live: &LiveSet,
    protect: &Protect,
    chain: &mut Vec<usize>,
    span: Span,
) -> Result<(), TypeError> {
    let Some(r) = st.heap.tracked_in(x) else {
        return Ok(());
    };
    let fields: Vec<(Symbol, RegionId)> = st.heap.tracking(r).unwrap().vars[x]
        .fields
        .iter()
        .map(|(f, t)| (f.clone(), *t))
        .collect();
    let mut remaining = Vec::new();
    for (f, target) in fields {
        let droppable = st.heap.contains(target)
            && st
                .heap
                .tracking(target)
                .map(|t| t.is_empty() && !t.pinned)
                .unwrap_or(false)
            && can_drop_region(st, target, live, protect);
        if droppable {
            record_vir(
                deriv,
                st,
                VirStep::Retract {
                    r,
                    x: x.clone(),
                    f,
                    target,
                },
                chain,
                span,
            )?;
        } else if !st.heap.contains(target) {
            // Dangling mapping on a variable leaving tracking: the whole
            // region will need to be weakened below.
            remaining.push(f);
        } else {
            remaining.push(f);
        }
    }
    if remaining.is_empty() {
        record_vir(deriv, st, VirStep::Unfocus { r, x: x.clone() }, chain, span)?;
        return Ok(());
    }
    // Fields remain: weaken the whole region, provided nothing live needs it.
    let other_live = st
        .gamma
        .iter()
        .find(|(v, b)| *v != x && b.region == Some(r) && live.contains(*v))
        .map(|(v, _)| v.clone());
    if let Some(v) = other_live {
        return Err(TypeError::new(
            format!(
                "cannot release {x}: its iso fields are still tracked and its region is \
                 shared with live variable {v}"
            ),
            span,
        ));
    }
    // Note: `x` itself leaving scope (or being rebound) does not keep its
    // old region alive, so only `protect` matters here.
    if protect.contains(&r) {
        return Err(TypeError::new(
            format!(
                "cannot release {x}: its region is still needed but its iso fields remain tracked"
            ),
            span,
        ));
    }
    record_vir(deriv, st, VirStep::Weaken { r }, chain, span)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::{Binding, TrackCtx};
    use fearless_syntax::Type;

    fn sym(s: &str) -> Symbol {
        Symbol::new(s)
    }

    fn setup() -> (DerivBuilder, TypeState, RegionId) {
        let mut st = TypeState::new();
        let r = st.fresh_region();
        st.heap.insert(r, TrackCtx::empty());
        st.gamma.bind(
            sym("x"),
            Binding {
                region: Some(r),
                ty: Type::named("node"),
            },
        );
        (DerivBuilder::new(), st, r)
    }

    #[test]
    fn normalize_drops_dead_region() {
        let (mut d, mut st, _r) = setup();
        let live = LiveSet::new(); // x is dead
        let mut chain = Vec::new();
        normalize(
            &mut d,
            &mut st,
            &live,
            &Protect::new(),
            &mut chain,
            Span::dummy(),
        )
        .unwrap();
        assert!(st.heap.is_empty());
        assert_eq!(chain.len(), 1); // one weaken
    }

    #[test]
    fn normalize_keeps_live_region_and_field_targets() {
        let (mut d, mut st, r) = setup();
        vir::focus(&mut st, r, &sym("x")).unwrap();
        let t = st.fresh_region();
        vir::explore(&mut st, r, &sym("x"), &sym("f"), t).unwrap();
        let live: LiveSet = [sym("x")].into_iter().collect();
        let mut chain = Vec::new();
        normalize(
            &mut d,
            &mut st,
            &live,
            &Protect::new(),
            &mut chain,
            Span::dummy(),
        )
        .unwrap();
        // x is live; its tracked field target t is empty and dead → retract,
        // then unfocus x; region r stays (live).
        assert!(st.heap.contains(r));
        assert!(!st.heap.contains(t));
        assert!(st.heap.tracked_in(&sym("x")).is_none());
    }

    #[test]
    fn normalize_respects_protect() {
        let (mut d, mut st, r) = setup();
        vir::focus(&mut st, r, &sym("x")).unwrap();
        let t = st.fresh_region();
        vir::explore(&mut st, r, &sym("x"), &sym("f"), t).unwrap();
        let live: LiveSet = [sym("x")].into_iter().collect();
        let protect: Protect = [t].into_iter().collect();
        let mut chain = Vec::new();
        normalize(&mut d, &mut st, &live, &protect, &mut chain, Span::dummy()).unwrap();
        // t is protected (e.g. it is the branch's result region).
        assert!(st.heap.contains(t));
        assert_eq!(st.heap.tracked_field(&sym("x"), &sym("f")), Some(t));
    }

    #[test]
    fn discharge_region_retracts_recursively() {
        let (mut d, mut st, r) = setup();
        vir::focus(&mut st, r, &sym("x")).unwrap();
        let t = st.fresh_region();
        vir::explore(&mut st, r, &sym("x"), &sym("f"), t).unwrap();
        let mut chain = Vec::new();
        discharge_region(
            &mut d,
            &mut st,
            r,
            &LiveSet::new(),
            &Protect::new(),
            &mut chain,
            Span::dummy(),
        )
        .unwrap();
        assert!(st.heap.tracking(r).unwrap().is_empty());
        assert!(!st.heap.contains(t));
    }

    #[test]
    fn discharge_region_rejects_live_contents() {
        let (mut d, mut st, r) = setup();
        vir::focus(&mut st, r, &sym("x")).unwrap();
        let t = st.fresh_region();
        vir::explore(&mut st, r, &sym("x"), &sym("f"), t).unwrap();
        st.gamma.bind(
            sym("y"),
            Binding {
                region: Some(t),
                ty: Type::named("node"),
            },
        );
        let live: LiveSet = [sym("y")].into_iter().collect();
        let err = discharge_region(
            &mut d,
            &mut st,
            r,
            &live,
            &Protect::new(),
            &mut Vec::new(),
            Span::dummy(),
        )
        .unwrap_err();
        assert!(err.message().contains("still"), "{err}");
    }

    #[test]
    fn discharge_var_weakens_when_fields_unretractable() {
        let (mut d, mut st, r) = setup();
        vir::focus(&mut st, r, &sym("x")).unwrap();
        let t = st.fresh_region();
        vir::explore(&mut st, r, &sym("x"), &sym("payload"), t).unwrap();
        // Protect the target (it is returned), so retraction is impossible;
        // x's region must be weakened instead (the Fig. 2 pattern).
        let protect: Protect = [t].into_iter().collect();
        let mut chain = Vec::new();
        discharge_var(
            &mut d,
            &mut st,
            &sym("x"),
            &LiveSet::new(),
            &protect,
            &mut chain,
            Span::dummy(),
        )
        .unwrap();
        assert!(!st.heap.contains(r));
        assert!(st.heap.contains(t));
    }

    #[test]
    fn live_regions_closes_over_tracked_targets() {
        let (_d, mut st, r) = setup();
        vir::focus(&mut st, r, &sym("x")).unwrap();
        let t = st.fresh_region();
        vir::explore(&mut st, r, &sym("x"), &sym("f"), t).unwrap();
        let live: LiveSet = [sym("x")].into_iter().collect();
        let regions = live_regions(&st, &live, &Protect::new());
        assert!(regions.contains(&r));
        assert!(regions.contains(&t));
    }
}
