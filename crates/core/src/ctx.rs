//! Static typing contexts: the heap context `H` of tracking contexts and the
//! variable context `Γ` (paper Fig. 9).
//!
//! A heap context is a set of *tracking contexts* `r°⟨x°[f ↦ r', …] …⟩`:
//! each region capability `r` carries an optional *pinning* mark `°` and a
//! set of *tracked* (focused) variables, each mapping some of its `iso`
//! fields to their statically-known target regions. Regions are treated as
//! affine resources (§4.1): reservation-shrinking operations consume them.

use std::collections::BTreeMap;
use std::fmt;

use fearless_syntax::{Symbol, Type};

/// A compile-time region identifier.
///
/// Regions are purely static: they group objects that enter or leave a
/// thread's reservation as a unit (§1). Fresh ids are drawn from a
/// per-function counter.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct RegionId(pub u32);

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Tracking information for one focused variable: which of its `iso` fields
/// are explicitly tracked, and to which regions they point.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct VarTrack {
    /// Pinned variables carry partial information: untracked `iso` fields of
    /// a pinned variable may not be assumed to dominate (§4.7).
    pub pinned: bool,
    /// Tracked fields and their target regions. A target that is no longer
    /// present in the heap context is *dangling*: the field may be
    /// reassigned but not read.
    pub fields: BTreeMap<Symbol, RegionId>,
}

/// The tracking context of a single region: `r°⟨X⟩`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TrackCtx {
    /// Pinned regions may not gain new tracked variables (§4.7).
    pub pinned: bool,
    /// The tracked (focused) variables in this region.
    pub vars: BTreeMap<Symbol, VarTrack>,
}

impl TrackCtx {
    /// An empty unpinned tracking context `r·⟨⟩`.
    pub fn empty() -> Self {
        TrackCtx::default()
    }

    /// Whether no variables are tracked.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }
}

/// The heap context `H`: a set of tracking contexts, one per region
/// capability held by the current expression.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct HeapCtx {
    regions: BTreeMap<RegionId, TrackCtx>,
}

impl HeapCtx {
    /// Creates an empty heap context.
    pub fn new() -> Self {
        HeapCtx::default()
    }

    /// Whether `r` is a currently-held capability.
    pub fn contains(&self, r: RegionId) -> bool {
        self.regions.contains_key(&r)
    }

    /// Returns the tracking context of `r`, if held.
    pub fn tracking(&self, r: RegionId) -> Option<&TrackCtx> {
        self.regions.get(&r)
    }

    /// Mutable access to the tracking context of `r`.
    pub fn tracking_mut(&mut self, r: RegionId) -> Option<&mut TrackCtx> {
        self.regions.get_mut(&r)
    }

    /// Adds a fresh region with the given tracking context.
    ///
    /// # Panics
    ///
    /// Panics if `r` is already present (well-formed contexts never
    /// duplicate bindings; callers draw `r` from a fresh counter).
    pub fn insert(&mut self, r: RegionId, ctx: TrackCtx) {
        let prev = self.regions.insert(r, ctx);
        assert!(prev.is_none(), "duplicate region binding {r}");
    }

    /// Removes (consumes) a region, returning its tracking context.
    pub fn remove(&mut self, r: RegionId) -> Option<TrackCtx> {
        self.regions.remove(&r)
    }

    /// Iterates over `(region, tracking)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (RegionId, &TrackCtx)> {
        self.regions.iter().map(|(r, c)| (*r, c))
    }

    /// The number of held region capabilities.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether no capabilities are held.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Finds the region in which variable `x` is tracked, if any.
    pub fn tracked_in(&self, x: &Symbol) -> Option<RegionId> {
        self.regions
            .iter()
            .find(|(_, c)| c.vars.contains_key(x))
            .map(|(r, _)| *r)
    }

    /// Looks up the tracked target of `x.f`, if `x` is focused and `f`
    /// tracked.
    pub fn tracked_field(&self, x: &Symbol, f: &Symbol) -> Option<RegionId> {
        let r = self.tracked_in(x)?;
        self.regions[&r].vars[x].fields.get(f).copied()
    }

    /// Renames every occurrence of region `from` to `to` (used by
    /// V5-Attach and alpha-renaming). Tracked-field targets are renamed
    /// even when dangling.
    pub fn rename_region(&mut self, from: RegionId, to: RegionId) {
        if let Some(ctx) = self.regions.remove(&from) {
            // Merge tracking contexts when `to` already exists.
            match self.regions.get_mut(&to) {
                Some(dst) => {
                    dst.pinned = dst.pinned || ctx.pinned;
                    for (x, vt) in ctx.vars {
                        dst.vars.insert(x, vt);
                    }
                }
                None => {
                    self.regions.insert(to, ctx);
                }
            }
        }
        for ctx in self.regions.values_mut() {
            for vt in ctx.vars.values_mut() {
                for target in vt.fields.values_mut() {
                    if *target == from {
                        *target = to;
                    }
                }
            }
        }
    }

    /// Applies a simultaneous renaming to all regions and field targets.
    pub fn rename_all(&mut self, map: &BTreeMap<RegionId, RegionId>) {
        let old = std::mem::take(&mut self.regions);
        for (r, mut ctx) in old {
            for vt in ctx.vars.values_mut() {
                for target in vt.fields.values_mut() {
                    if let Some(new) = map.get(target) {
                        *target = *new;
                    }
                }
            }
            let new_r = map.get(&r).copied().unwrap_or(r);
            let prev = self.regions.insert(new_r, ctx);
            assert!(prev.is_none(), "renaming collided on {new_r}");
        }
    }

    /// All region ids mentioned anywhere (capabilities and field targets).
    pub fn mentioned_regions(&self) -> Vec<RegionId> {
        let mut out: Vec<RegionId> = self.regions.keys().copied().collect();
        for ctx in self.regions.values() {
            for vt in ctx.vars.values() {
                out.extend(vt.fields.values().copied());
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

impl fmt::Display for HeapCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (r, ctx) in &self.regions {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{r}{}⟨", if ctx.pinned { "°" } else { "" })?;
            let mut vfirst = true;
            for (x, vt) in &ctx.vars {
                if !vfirst {
                    write!(f, ", ")?;
                }
                vfirst = false;
                write!(f, "{x}{}[", if vt.pinned { "°" } else { "" })?;
                let mut ffirst = true;
                for (fld, target) in &vt.fields {
                    if !ffirst {
                        write!(f, ", ")?;
                    }
                    ffirst = false;
                    write!(f, "{fld} ↦ {target}")?;
                }
                write!(f, "]")?;
            }
            write!(f, "⟩")?;
        }
        if first {
            write!(f, "·")?;
        }
        Ok(())
    }
}

/// A variable binding in `Γ`: its region (for reference types) and type.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Binding {
    /// Region of the bound value; `None` for value types (`int`, `bool`,
    /// `unit`, and maybes thereof), which are copied freely.
    pub region: Option<RegionId>,
    /// The declared/inferred type.
    pub ty: Type,
}

/// The variable typing context `Γ`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct VarCtx {
    vars: BTreeMap<Symbol, Binding>,
}

impl VarCtx {
    /// Creates an empty variable context.
    pub fn new() -> Self {
        VarCtx::default()
    }

    /// Looks up a binding.
    pub fn get(&self, x: &Symbol) -> Option<&Binding> {
        self.vars.get(x)
    }

    /// Whether `x` is bound.
    pub fn contains(&self, x: &Symbol) -> bool {
        self.vars.contains_key(x)
    }

    /// Binds `x` (shadowing is rejected by the checker before calling
    /// this, since well-formed contexts have no duplicate bindings).
    pub fn bind(&mut self, x: Symbol, binding: Binding) {
        self.vars.insert(x, binding);
    }

    /// Removes a binding (scope exit), returning it.
    pub fn unbind(&mut self, x: &Symbol) -> Option<Binding> {
        self.vars.remove(x)
    }

    /// Re-binds an existing variable to a new region.
    pub fn set_region(&mut self, x: &Symbol, region: Option<RegionId>) {
        if let Some(b) = self.vars.get_mut(x) {
            b.region = region;
        }
    }

    /// Iterates over bindings in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&Symbol, &Binding)> {
        self.vars.iter()
    }

    /// The variables bound to region `r`.
    pub fn vars_in_region(&self, r: RegionId) -> Vec<Symbol> {
        self.vars
            .iter()
            .filter(|(_, b)| b.region == Some(r))
            .map(|(x, _)| x.clone())
            .collect()
    }

    /// Renames regions per `map` in all bindings.
    pub fn rename_all(&mut self, map: &BTreeMap<RegionId, RegionId>) {
        for b in self.vars.values_mut() {
            if let Some(r) = b.region {
                if let Some(new) = map.get(&r) {
                    b.region = Some(*new);
                }
            }
        }
    }

    /// Renames one region in all bindings.
    pub fn rename_region(&mut self, from: RegionId, to: RegionId) {
        for b in self.vars.values_mut() {
            if b.region == Some(from) {
                b.region = Some(to);
            }
        }
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether the context is empty.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }
}

impl fmt::Display for VarCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (x, b) in &self.vars {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            match b.region {
                Some(r) => write!(f, "{x} : {r} {}", b.ty)?,
                None => write!(f, "{x} : {}", b.ty)?,
            }
        }
        if first {
            write!(f, "·")?;
        }
        Ok(())
    }
}

/// A full static state: the pair `(H; Γ)` plus the fresh-region counter.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TypeState {
    /// The heap context `H`.
    pub heap: HeapCtx,
    /// The variable context `Γ`.
    pub gamma: VarCtx,
    /// Next fresh region id.
    pub next_region: u32,
}

impl TypeState {
    /// Creates an empty state.
    pub fn new() -> Self {
        TypeState::default()
    }

    /// Draws a fresh region id.
    pub fn fresh_region(&mut self) -> RegionId {
        let r = RegionId(self.next_region);
        self.next_region += 1;
        r
    }

    /// Renders the static context as a Graphviz DOT graph: region nodes
    /// (boxes listing their tracked variables), tracked-field edges between
    /// regions, and variable-binding edges from an implicit stack node.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from(
            "digraph contexts {
  rankdir=LR;
",
        );
        for (r, ctx) in self.heap.iter() {
            let vars: Vec<String> = ctx
                .vars
                .iter()
                .map(|(x, vt)| {
                    let fields: Vec<String> =
                        vt.fields.iter().map(|(f, t)| format!("{f}↦{t}")).collect();
                    format!("{x}[{}]", fields.join(","))
                })
                .collect();
            let pin = if ctx.pinned { "°" } else { "" };
            let _ = writeln!(
                out,
                "  {r} [shape=box, label=\"{r}{pin} <{}>\"];",
                vars.join(" ")
            );
            for (x, vt) in &ctx.vars {
                for (f, t) in &vt.fields {
                    if self.heap.contains(*t) {
                        let _ = writeln!(out, "  {r} -> {t} [label=\"{x}.{f}\"];");
                    } else {
                        let _ = writeln!(
                            out,
                            "  {r} -> dangling_{t} [label=\"{x}.{f}\", style=dashed];"
                        );
                        let _ = writeln!(out, "  dangling_{t} [label=\"X\", shape=plaintext];");
                    }
                }
            }
        }
        let _ = writeln!(out, "  stack [shape=plaintext, label=\"Gamma\"];");
        for (x, b) in self.gamma.iter() {
            if let Some(r) = b.region {
                if self.heap.contains(r) {
                    let _ = writeln!(out, "  stack -> {r} [label=\"{x}\", color=gray];");
                }
            }
        }
        out.push_str(
            "}
",
        );
        out
    }

    /// Checks structural well-formedness: tracked variables must be bound in
    /// `Γ` to the region tracking them.
    pub fn well_formed(&self) -> Result<(), String> {
        for (r, ctx) in self.heap.iter() {
            for x in ctx.vars.keys() {
                match self.gamma.get(x) {
                    Some(b) if b.region == Some(r) => {}
                    Some(b) => {
                        return Err(format!(
                            "tracked variable {x} is bound to {:?}, not {r}",
                            b.region
                        ))
                    }
                    None => return Err(format!("tracked variable {x} is not bound in Γ")),
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for TypeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}; {}", self.heap, self.gamma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(s: &str) -> Symbol {
        Symbol::new(s)
    }

    #[test]
    fn heap_ctx_insert_remove() {
        let mut h = HeapCtx::new();
        h.insert(RegionId(0), TrackCtx::empty());
        assert!(h.contains(RegionId(0)));
        assert!(!h.contains(RegionId(1)));
        assert!(h.remove(RegionId(0)).is_some());
        assert!(h.is_empty());
    }

    #[test]
    #[should_panic(expected = "duplicate region")]
    fn heap_ctx_rejects_duplicates() {
        let mut h = HeapCtx::new();
        h.insert(RegionId(0), TrackCtx::empty());
        h.insert(RegionId(0), TrackCtx::empty());
    }

    #[test]
    fn tracked_field_lookup() {
        let mut h = HeapCtx::new();
        let mut ctx = TrackCtx::empty();
        let mut vt = VarTrack::default();
        vt.fields.insert(sym("next"), RegionId(7));
        ctx.vars.insert(sym("n"), vt);
        h.insert(RegionId(1), ctx);
        h.insert(RegionId(7), TrackCtx::empty());
        assert_eq!(h.tracked_in(&sym("n")), Some(RegionId(1)));
        assert_eq!(h.tracked_field(&sym("n"), &sym("next")), Some(RegionId(7)));
        assert_eq!(h.tracked_field(&sym("n"), &sym("prev")), None);
    }

    #[test]
    fn rename_region_rewrites_targets() {
        let mut h = HeapCtx::new();
        let mut ctx = TrackCtx::empty();
        let mut vt = VarTrack::default();
        vt.fields.insert(sym("f"), RegionId(2));
        ctx.vars.insert(sym("x"), vt);
        h.insert(RegionId(1), ctx);
        h.insert(RegionId(2), TrackCtx::empty());
        h.rename_region(RegionId(2), RegionId(9));
        assert!(h.contains(RegionId(9)));
        assert!(!h.contains(RegionId(2)));
        assert_eq!(h.tracked_field(&sym("x"), &sym("f")), Some(RegionId(9)));
    }

    #[test]
    fn rename_merges_tracking_contexts() {
        let mut h = HeapCtx::new();
        let mut c1 = TrackCtx::empty();
        c1.vars.insert(sym("x"), VarTrack::default());
        let mut c2 = TrackCtx::empty();
        c2.vars.insert(sym("y"), VarTrack::default());
        h.insert(RegionId(1), c1);
        h.insert(RegionId(2), c2);
        h.rename_region(RegionId(1), RegionId(2));
        let merged = h.tracking(RegionId(2)).unwrap();
        assert_eq!(merged.vars.len(), 2);
    }

    #[test]
    fn well_formedness_catches_unbound_tracked_var() {
        let mut st = TypeState::new();
        let r = st.fresh_region();
        let mut ctx = TrackCtx::empty();
        ctx.vars.insert(sym("ghost"), VarTrack::default());
        st.heap.insert(r, ctx);
        assert!(st.well_formed().is_err());
        st.gamma.bind(
            sym("ghost"),
            Binding {
                region: Some(r),
                ty: Type::named("s"),
            },
        );
        assert!(st.well_formed().is_ok());
    }

    #[test]
    fn display_renders_tracking_contexts() {
        let mut st = TypeState::new();
        let r = st.fresh_region();
        let rf = st.fresh_region();
        let mut vt = VarTrack::default();
        vt.fields.insert(sym("hd"), rf);
        let mut ctx = TrackCtx::empty();
        ctx.vars.insert(sym("l"), vt);
        st.heap.insert(r, ctx);
        st.heap.insert(rf, TrackCtx::empty());
        let shown = st.heap.to_string();
        assert!(shown.contains("hd ↦ r1"), "got {shown}");
    }

    #[test]
    fn to_dot_renders_regions_and_edges() {
        let mut st = TypeState::new();
        let r = st.fresh_region();
        let rf = st.fresh_region();
        let mut vt = VarTrack::default();
        vt.fields.insert(sym("hd"), rf);
        let mut ctx = TrackCtx::empty();
        ctx.vars.insert(sym("l"), vt);
        st.heap.insert(r, ctx);
        st.heap.insert(rf, TrackCtx::empty());
        st.gamma.bind(
            sym("l"),
            Binding {
                region: Some(r),
                ty: Type::named("dll"),
            },
        );
        let dot = st.to_dot();
        assert!(dot.contains("digraph contexts"));
        assert!(dot.contains("r0 -> r1"), "{dot}");
        assert!(dot.contains("l.hd"), "{dot}");
        assert!(dot.contains("stack -> r0"), "{dot}");
    }

    #[test]
    fn vars_in_region() {
        let mut g = VarCtx::new();
        g.bind(
            sym("a"),
            Binding {
                region: Some(RegionId(1)),
                ty: Type::named("s"),
            },
        );
        g.bind(
            sym("b"),
            Binding {
                region: Some(RegionId(1)),
                ty: Type::named("s"),
            },
        );
        g.bind(
            sym("c"),
            Binding {
                region: None,
                ty: Type::Int,
            },
        );
        assert_eq!(g.vars_in_region(RegionId(1)).len(), 2);
    }
}
