//! End-to-end daemon tests: the full protocol self-test, cache
//! write-back across daemon restarts, and serve-bench determinism.

use std::path::PathBuf;

use fearless_incr::disk::{DiskCache, LoadOutcome};
use fearless_serve::bench::{run_bench, BenchOptions};
use fearless_serve::client::{self_test, Client, SMOKE_PROGRAM};
use fearless_serve::protocol::codes;
use fearless_serve::server::{ServeOptions, Server};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fearless-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn self_test_exercises_the_whole_protocol() {
    let dir = scratch("selftest");
    let transcript = self_test(&dir.join("serve.sock")).expect("self-test");
    for probe in [
        "ping → pong",
        "dedupe → byte-identical response",
        "shed → overloaded with retry hint",
        "codes 2/3/4/5/6",
        "deadline 0 → deadline-exceeded (code 9)",
        "stale → served stale: true under load",
        "worker panic ×2 → quarantined (code 70)",
        "shutdown drained cleanly",
        "all probes passed",
    ] {
        assert!(
            transcript.contains(probe),
            "missing `{probe}`:\n{transcript}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shutdown_persists_the_cache_and_a_restart_runs_warm() {
    let dir = scratch("cache");
    let socket = dir.join("serve.sock");
    let cache_dir = dir.join("cache");

    // First daemon: cold cache, one check, draining shutdown.
    let mut opts = ServeOptions::new(&socket);
    opts.cache_dir = Some(cache_dir.clone());
    let spawned = Server::spawn(opts).expect("spawn");
    let mut c = Client::connect(&socket).expect("connect");
    let first = c.request("check", SMOKE_PROGRAM).expect("check");
    assert_eq!(first.code, codes::OK, "{}", first.output);
    let r = c.request("shutdown", "").expect("shutdown");
    assert_eq!(r.code, codes::OK, "{}", r.output);
    spawned.shutdown_and_join().expect("join");

    // The fingerprint cache must be on disk and loadable — not merely
    // present but uncorrupted.
    let cache = DiskCache::load(&cache_dir);
    assert_eq!(
        cache.load_outcome(),
        LoadOutcome::Warm,
        "persisted cache must load warm"
    );
    assert!(!cache.is_empty(), "cache must have entries after a check");

    // Second daemon over the same cache: identical response bytes.
    let mut opts = ServeOptions::new(&socket);
    opts.cache_dir = Some(cache_dir);
    let spawned = Server::spawn(opts).expect("respawn");
    let mut c = Client::connect(&socket).expect("reconnect");
    let warm = c.request("check", SMOKE_PROGRAM).expect("warm check");
    assert_eq!(
        warm.to_json(),
        first.to_json(),
        "identical bodies must yield byte-identical responses across restarts"
    );
    let r = c.request("shutdown", "").expect("shutdown 2");
    assert_eq!(r.code, codes::OK);
    spawned.shutdown_and_join().expect("join 2");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wal_replay_recovers_a_crashed_daemon_byte_identically() {
    let dir = scratch("crash");
    let socket = dir.join("serve.sock");
    let cache_dir = dir.join("cache");
    let crash_dir = dir.join("cache-at-crash");

    // Daemon A: serve one check, then snapshot the cache directory
    // *while it is still running* — exactly the bytes a kill -9 would
    // leave behind: a WAL with the entry, no check-cache.json yet.
    let mut opts = ServeOptions::new(&socket);
    opts.cache_dir = Some(cache_dir.clone());
    let spawned = Server::spawn(opts).expect("spawn");
    let mut c = Client::connect(&socket).expect("connect");
    let first = c.request("check", SMOKE_PROGRAM).expect("check");
    assert_eq!(first.code, codes::OK, "{}", first.output);

    std::fs::create_dir_all(&crash_dir).unwrap();
    for entry in std::fs::read_dir(&cache_dir).unwrap() {
        let entry = entry.unwrap();
        if entry.file_type().unwrap().is_file() {
            std::fs::copy(entry.path(), crash_dir.join(entry.file_name())).unwrap();
        }
    }
    assert!(
        crash_dir.join("check-cache.wal").exists(),
        "the WAL must exist before any clean save"
    );
    assert!(
        !crash_dir.join("check-cache.json").exists(),
        "no clean save may have happened yet — otherwise this test \
         is not exercising crash recovery"
    );
    let r = c.request("shutdown", "").expect("shutdown");
    assert_eq!(r.code, codes::OK);
    spawned.shutdown_and_join().expect("join");

    // Daemon B over the crash snapshot: replay must restore the cache
    // and the response bytes must match daemon A's exactly.
    let socket_b = dir.join("serve-b.sock");
    let mut opts = ServeOptions::new(&socket_b);
    opts.cache_dir = Some(crash_dir);
    let spawned = Server::spawn(opts).expect("respawn");
    let mut c = Client::connect(&socket_b).expect("reconnect");
    let stats = c.request("stats", "").expect("stats");
    assert!(
        stats.output.contains("\"wal_replayed\"") && !stats.output.contains("\"wal_replayed\": 0"),
        "stats must count the replayed WAL records:\n{}",
        stats.output
    );
    let recovered = c.request("check", SMOKE_PROGRAM).expect("warm check");
    assert_eq!(
        recovered.to_json(),
        first.to_json(),
        "post-crash responses must be byte-identical to pre-crash ones"
    );
    let r = c.request("shutdown", "").expect("shutdown 2");
    assert_eq!(r.code, codes::OK);
    spawned.shutdown_and_join().expect("join 2");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_bench_is_deterministic_across_runs() {
    let dir = scratch("bench");
    let socket = dir.join("serve.sock");
    let mut sopts = ServeOptions::new(&socket);
    sopts.workers = 2;
    sopts.queue_capacity = 4;
    let spawned = Server::spawn(sopts).expect("spawn");

    let mut bopts = BenchOptions::new(&socket);
    bopts.clients = 3;
    bopts.requests = 4;
    bopts.bodies = 3;
    bopts.shed_extra = 2;
    let one = run_bench(&bopts).expect("bench run 1");
    let two = run_bench(&bopts).expect("bench run 2");

    // Identical request streams → identical journals modulo `_nondet`.
    let strip = |text: &str| {
        fearless_obs::strip_nondet(&fearless_incr::parse_json(text).expect("journal json")).render()
    };
    assert_eq!(
        strip(&one.journal_text),
        strip(&two.journal_text),
        "journal deterministic portions must be byte-identical"
    );

    // The BENCH documents agree on every deterministic counter; only
    // `_nondet` leaves may differ — which is exactly a 0-regression
    // bench-diff at any threshold.
    let b1 = fearless_incr::parse_json(&one.bench_text).expect("bench json 1");
    let b2 = fearless_incr::parse_json(&two.bench_text).expect("bench json 2");
    let diff = fearless_obs::bench_diff(&b1, &b2, 0);
    assert!(
        !diff.has_regressions(),
        "deterministic counters drifted:\n{}",
        diff.render()
    );
    assert_eq!(strip(&one.bench_text), strip(&two.bench_text));

    // The report renders from the journal and is itself deterministic.
    let r1 = fearless_serve::render_serve_report(&one.journal_text).expect("report");
    let r2 = fearless_serve::render_serve_report(&two.journal_text).expect("report 2");
    assert!(
        r1.contains("serve report: 3 client(s), 12 request(s)"),
        "{r1}"
    );
    assert!(r1.contains("shed drill:"), "{r1}");

    // Wall-clock lines differ between reports; the lane table (every
    // line except histogram summaries of nondet lanes) must not.
    let stable = |r: &str| {
        r.lines()
            .filter(|l| !l.contains("_nondet"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(stable(&r1), stable(&r2));

    let mut c = Client::connect(&socket).expect("connect");
    let r = c.request("shutdown", "").expect("shutdown");
    assert_eq!(r.code, codes::OK);
    spawned.shutdown_and_join().expect("join");
    let _ = std::fs::remove_dir_all(&dir);
}
