//! SIGTERM drain under load, in its own test binary: the TERM flag is
//! process-global, so this drill cannot share a process with the other
//! daemon tests.
//!
//! The scenario the guard layer promises (`docs/GUARD.md`): a daemon
//! with one worker pinned on a long job and more work queued behind it
//! receives SIGTERM. The in-flight job must *complete* with a real
//! verdict, every queued job must be answered with a structured code 8
//! (never a hang or a dropped connection), the fingerprint cache must
//! be persisted exactly once with its write-ahead log reset, and a
//! successor daemon in the same process must start with a fresh TERM
//! flag, replay nothing, and serve byte-identical warm responses.

use std::path::PathBuf;
use std::time::Duration;

use fearless_incr::disk::{DiskCache, LoadOutcome};
use fearless_serve::client::Client;
use fearless_serve::protocol::codes;
use fearless_serve::server::{install_sigterm, ServeOptions, Server, STALL_MARKER};

extern "C" {
    fn raise(signum: i32) -> i32;
}

const SIGTERM: i32 = 15;

const WARM_PROGRAM: &str = "def warm(x: int): int { x + 1 }\n";

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fearless-sigterm-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Parses `"name": <digits>` out of a stats document.
fn stat(output: &str, name: &str) -> u64 {
    let needle = format!("\"{name}\": ");
    let at = output.find(&needle).unwrap_or_else(|| {
        panic!("stat `{name}` missing from:\n{output}");
    });
    output[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap()
}

/// Polls `stats` until `pred` holds (2s budget, 1ms ticks).
fn wait_for(c: &mut Client, what: &str, pred: impl Fn(&str) -> bool) {
    for _ in 0..2000 {
        let r = c.request("stats", "").expect("stats");
        if pred(&r.output) {
            return;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    panic!("timed out waiting for {what}");
}

#[test]
fn sigterm_drains_inflight_and_rejects_queued_with_code_8() {
    install_sigterm();
    let dir = scratch("drain");
    let socket = dir.join("serve.sock");
    let cache_dir = dir.join("cache");

    let mut opts = ServeOptions::new(&socket);
    opts.workers = 1;
    opts.queue_capacity = 8;
    opts.cache_dir = Some(cache_dir.clone());
    opts.inject_faults = true;
    let spawned = Server::spawn(opts.clone()).expect("spawn");

    // Warm the cache with one completed check before the storm.
    let mut stats = Client::connect(&socket).expect("connect");
    let warm = stats.request("check", WARM_PROGRAM).expect("warm check");
    assert_eq!(warm.code, codes::OK, "{}", warm.output);

    // Pin the single worker on a stalled job (in-flight at signal
    // time), then pile two more jobs into the queue behind it.
    let sock_a = socket.clone();
    let inflight = std::thread::spawn(move || {
        let mut c = Client::connect(&sock_a).expect("connect inflight");
        c.request("check", &format!("{STALL_MARKER}\n"))
            .expect("inflight response")
    });
    wait_for(&mut stats, "the stalled job to be in-flight", |out| {
        stat(out, "inflight_nondet") >= 1
    });
    let queued: Vec<_> = (0..2)
        .map(|i| {
            let sock = socket.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&sock).expect("connect queued");
                c.request("check", &format!("def q{i}(x: int): int {{ x + {i} }}\n"))
                    .expect("queued response")
            })
        })
        .collect();
    wait_for(&mut stats, "both jobs to queue behind the stall", |out| {
        stat(out, "queue_len_nondet") >= 2
    });

    // SIGTERM lands while the worker is mid-stall and the queue is
    // full. The accept loop must notice within one poll tick and
    // drain: queued jobs answered with 8, the stalled job finished.
    assert_eq!(unsafe { raise(SIGTERM) }, 0, "raise(SIGTERM)");

    let inflight = inflight.join().expect("inflight thread");
    assert_ne!(
        inflight.code,
        codes::SHUTTING_DOWN,
        "the in-flight job must complete with a real verdict, got: {}",
        inflight.output
    );
    assert_eq!(
        inflight.code,
        codes::DIAGNOSTIC,
        "the stall marker is not a program; expected a diagnostic, got: {}",
        inflight.output
    );
    for handle in queued {
        let r = handle.join().expect("queued thread");
        assert_eq!(
            r.code,
            codes::SHUTTING_DOWN,
            "queued jobs must be rejected with code 8, got {}: {}",
            r.code,
            r.output
        );
    }

    let summary = spawned.shutdown_and_join().expect("join drained daemon");
    assert!(
        summary.contains("drained and stopped"),
        "unexpected summary: {summary}"
    );

    // The cache was persisted exactly once on the way down and the WAL
    // was reset — a cold load must come up warm with zero replay debt.
    let cache = DiskCache::load(&cache_dir);
    assert_eq!(cache.load_outcome(), LoadOutcome::Warm, "cache persisted");
    assert!(!cache.is_empty(), "warm check must have left entries");

    // A successor daemon in the same process: the TERM flag was
    // consumed by the drain (not left latched), nothing replays, and
    // warm responses are byte-identical.
    let spawned = Server::spawn(opts).expect("respawn after SIGTERM");
    let mut c = Client::connect(&socket).expect("reconnect");
    let st = c.request("stats", "").expect("stats after restart");
    assert_eq!(
        stat(&st.output, "wal_replayed"),
        0,
        "a clean shutdown leaves nothing to replay: {}",
        st.output
    );
    let again = c.request("check", WARM_PROGRAM).expect("warm check 2");
    assert_eq!(
        again.to_json(),
        warm.to_json(),
        "warm responses must be byte-identical across the restart"
    );
    let r = c.request("shutdown", "").expect("shutdown");
    assert_eq!(r.code, codes::OK, "{}", r.output);
    spawned.shutdown_and_join().expect("join successor");
    let _ = std::fs::remove_dir_all(&dir);
}
