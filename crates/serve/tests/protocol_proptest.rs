//! Property tests for the `fearless-serve/1` frame codec and request
//! parser: every well-formed document round-trips to byte-identical
//! re-encoded JSON, and *arbitrary* bytes — whole frames or torn
//! prefixes — never panic and always classify to a documented protocol
//! code (2 oversized, 3 truncated, 4 invalid UTF-8, 5 unknown kind,
//! 6 malformed).

use proptest::prelude::*;

use fearless_serve::protocol::{
    codes, parse_request, read_frame, write_frame, Frame, Request, Response, MAX_FRAME,
};

fn work_kind() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("check".to_string()),
        Just("lint".to_string()),
        Just("flow".to_string()),
        Just("profile".to_string()),
        Just("ping".to_string()),
        Just("stats".to_string()),
    ]
}

fn response_code() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(1u64),
        Just(2u64),
        Just(3u64),
        Just(4u64),
        Just(5u64),
        Just(6u64),
        Just(7u64),
        Just(8u64),
        Just(9u64),
        Just(70u64),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A request survives render → parse → re-render byte-identically
    /// (the dedupe layer depends on stable request bytes).
    #[test]
    fn request_reencode_is_byte_identical(
        kind in work_kind(),
        body in "[ -~\\n\\t]{0,200}",
        deadline in prop::option::of(0u64..1_000_000),
        allow_stale in prop::bool::ANY,
    ) {
        let mut req = Request::new(kind, body);
        req.deadline_millis = deadline;
        req.allow_stale = allow_stale;
        let wire = req.to_json();
        let parsed = parse_request(wire.as_bytes()).expect("well-formed request must parse");
        prop_assert_eq!(&parsed, &req);
        prop_assert_eq!(parsed.to_json(), wire, "re-encode must be byte-identical");
    }

    /// A response survives render → parse → re-render byte-identically
    /// (crash recovery replays stored responses by their bytes).
    #[test]
    fn response_reencode_is_byte_identical(
        code in response_code(),
        output in "[ -~\\n\\t]{0,200}",
        retry in prop::option::of(1u64..10_000),
        cost in prop::option::of(0u64..1_000_000),
        stale in prop::bool::ANY,
    ) {
        let mut r = Response::error(code, output);
        r.retry_after_millis = retry;
        r.cost = cost;
        r.stale = stale;
        let wire = r.to_json();
        let parsed = Response::from_json(&wire).expect("well-formed response must parse");
        prop_assert_eq!(&parsed, &r);
        prop_assert_eq!(parsed.to_json(), wire, "re-encode must be byte-identical");
    }

    /// Frame write → read round-trips any body, and a second read sees
    /// a clean EOF (no trailing bytes invented or dropped).
    #[test]
    fn frame_roundtrips_arbitrary_bodies(body in prop::collection::vec(0u8..=255, 0..4096)) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &body).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        match read_frame(&mut cursor, MAX_FRAME).unwrap() {
            Frame::Body(b) => prop_assert_eq!(b, body),
            other => prop_assert!(false, "expected body, got {:?}", other),
        }
        prop_assert!(matches!(read_frame(&mut cursor, MAX_FRAME).unwrap(), Frame::Eof));
    }

    /// An arbitrary *prefix* of a valid framed stream never panics the
    /// reader and always classifies: the full frame, a truncation, or
    /// (cut == 0) a clean EOF. This is the wire contract the daemon's
    /// connection handler leans on when peers hang up mid-write.
    #[test]
    fn torn_prefixes_classify_cleanly(
        body in prop::collection::vec(0u8..=255, 1..512),
        cut_seed in 0usize..1_000_000,
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &body).unwrap();
        let cut = cut_seed % (buf.len() + 1);
        let mut cursor = std::io::Cursor::new(buf[..cut].to_vec());
        match read_frame(&mut cursor, MAX_FRAME).unwrap() {
            Frame::Eof => prop_assert_eq!(cut, 0, "EOF only on an empty prefix"),
            Frame::Truncated => prop_assert!(cut < buf.len()),
            Frame::Body(b) => {
                prop_assert_eq!(cut, buf.len(), "a full body needs the full stream");
                prop_assert_eq!(b, body);
            }
            Frame::Oversized(_) => prop_assert!(false, "writer never produces oversized"),
        }
    }

    /// Raw byte soup fed to the reader never panics and never yields a
    /// phantom body larger than the stream; declared lengths beyond
    /// MAX_FRAME classify as oversized without allocating.
    #[test]
    fn byte_soup_never_panics_the_reader(bytes in prop::collection::vec(0u8..=255, 0..64)) {
        let mut cursor = std::io::Cursor::new(bytes.clone());
        match read_frame(&mut cursor, MAX_FRAME).unwrap() {
            Frame::Body(b) => prop_assert!(b.len() + 4 <= bytes.len()),
            Frame::Oversized(len) => prop_assert!(len > MAX_FRAME),
            Frame::Eof => prop_assert!(bytes.is_empty()),
            Frame::Truncated => {}
        }
    }

    /// Arbitrary frame bodies never panic the request parser, and every
    /// rejection lands on a documented code: 4 (not UTF-8), 5 (unknown
    /// kind), or 6 (malformed document).
    #[test]
    fn arbitrary_bodies_classify_to_documented_codes(
        bytes in prop::collection::vec(0u8..=255, 0..256),
    ) {
        match parse_request(&bytes) {
            Ok(req) => {
                // Anything that parses must re-encode and re-parse.
                let again = parse_request(req.to_json().as_bytes()).unwrap();
                prop_assert_eq!(again, req);
            }
            Err((code, _)) => prop_assert!(
                code == codes::INVALID_UTF8
                    || code == codes::UNKNOWN_KIND
                    || code == codes::MALFORMED,
                "undocumented rejection code {}", code
            ),
        }
    }

    /// JSON-shaped garbage (valid UTF-8, arbitrary structure) also
    /// never panics and classifies to 5 or 6.
    #[test]
    fn utf8_garbage_classifies_to_5_or_6(text in "[ -~\\n\\t]{0,200}") {
        match parse_request(text.as_bytes()) {
            Ok(_) => {}
            Err((code, _)) => prop_assert!(
                code == codes::UNKNOWN_KIND || code == codes::MALFORMED,
                "UTF-8 input rejected with non-UTF-8 code {}", code
            ),
        }
    }
}
