//! `fearlessc serve-bench`: a seeded load generator over the synth
//! corpus, emitting a `fearless-obs/1` journal (deterministic modulo
//! `_nondet` keys) and a bench-diff-gated `BENCH_serve.json`.
//!
//! The workload is a pure function of the options: N clients × M
//! requests, each assigned a kind (cycling over the work kinds) and a
//! seeded synthesized body. Because the daemon's responses are
//! deterministic in the request body, the per-request journal entries
//! — response sizes, codes, and content fingerprints — are
//! byte-identical across runs; only latency and queue-depth
//! distributions are wall-clock and carry `_nondet` keys.
//!
//! After the main phase, the *shed drill* pauses the workers, sends
//! `queue_capacity + shed_extra` fresh distinct bodies, and resumes:
//! exactly `shed_extra` must be answered `overloaded`, which makes the
//! shed counter deterministic too.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use fearless_incr::disk::checksum_hex;
use fearless_obs::{Histogram, HistogramSet, Journal, JournalEntry};
use fearless_trace::Json;

use crate::client::{stat_counter, Client};
use crate::protocol::{codes, WORK_KINDS};

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Daemon socket to drive.
    pub socket: PathBuf,
    /// Concurrent clients.
    pub clients: usize,
    /// Requests per client.
    pub requests: usize,
    /// Distinct synthesized bodies the workload cycles over.
    pub bodies: usize,
    /// Workload seed (bodies and the request mix derive from it).
    pub seed: u64,
    /// Drill requests beyond the queue capacity; each must shed.
    pub shed_extra: usize,
}

impl BenchOptions {
    /// The CI workload: 4 clients × 6 requests over 6 bodies, seed 42,
    /// 4 drill requests past capacity.
    pub fn new(socket: impl Into<PathBuf>) -> BenchOptions {
        BenchOptions {
            socket: socket.into(),
            clients: 4,
            requests: 6,
            bodies: 6,
            seed: 42,
            shed_extra: 4,
        }
    }
}

/// What a bench run produced.
pub struct BenchOutcome {
    /// The rendered `fearless-obs/1` journal.
    pub journal_text: String,
    /// The rendered `BENCH_serve.json` document.
    pub bench_text: String,
    /// Human summary for stdout.
    pub summary: String,
}

/// SplitMix64: the deterministic per-request body assignment.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn synth_body(seed: u64, functions: usize) -> String {
    fearless_synth::synthesize(&fearless_synth::SynthOptions {
        seed,
        functions,
        boxes: 1,
        max_ops: 4,
        window: 8,
    })
}

/// Low 64 bits of the FNV content checksum, as the journal's response
/// fingerprint field.
fn fp64(text: &str) -> u64 {
    u64::from_str_radix(&checksum_hex(text), 16).unwrap_or(0)
}

struct RequestRecord {
    client: usize,
    index: usize,
    kind: &'static str,
    body_idx: usize,
    code: u64,
    bytes: u64,
    fp: u64,
    latency_micros: u64,
}

/// Runs the load generator against a live daemon.
///
/// # Errors
///
/// Propagates connection failures, protocol errors, and drill
/// invariants that did not hold (e.g. a shed count that is not exactly
/// `shed_extra`).
pub fn run_bench(opts: &BenchOptions) -> Result<BenchOutcome, String> {
    let n = opts.clients.max(1);
    let m = opts.requests.max(1);
    let b = opts.bodies.max(1);

    let mut control = Client::connect(&opts.socket)?;
    let r = control.request("reset", "")?;
    if r.code != codes::OK {
        return Err(format!("reset failed: {}", r.output));
    }

    // Seeded distinct bodies (full synth prelude + a few generated
    // functions each; the daemon's hot fingerprint cache makes the
    // shared prelude nearly free after the first derivation).
    let bodies: Arc<Vec<String>> = Arc::new(
        (0..b)
            .map(|i| synth_body(opts.seed.wrapping_mul(1009).wrapping_add(i as u64), 3))
            .collect(),
    );

    // The deterministic request plan: global index g = client*m + i.
    let distinct: std::collections::BTreeSet<(&str, usize)> =
        (0..n * m).map(|g| plan(opts.seed, b, g)).collect();
    let distinct_requests = distinct.len() as u64;

    // Main phase: N concurrent clients, M requests each.
    let started = Instant::now();
    let mut handles = Vec::new();
    for c in 0..n {
        let socket = opts.socket.clone();
        let bodies = Arc::clone(&bodies);
        let seed = opts.seed;
        handles.push(std::thread::spawn(
            move || -> Result<Vec<RequestRecord>, String> {
                let mut client = Client::connect(&socket)?;
                let mut records = Vec::with_capacity(m);
                for i in 0..m {
                    let g = c * m + i;
                    let (kind, body_idx) = plan(seed, b, g);
                    let t0 = Instant::now();
                    let resp = client.request(kind, &bodies[body_idx])?;
                    if resp.code != codes::OK && resp.code != codes::DIAGNOSTIC {
                        return Err(format!(
                            "client {c} request {i} ({kind}): unexpected code {} — {}",
                            resp.code, resp.output
                        ));
                    }
                    records.push(RequestRecord {
                        client: c,
                        index: i,
                        kind,
                        body_idx,
                        code: resp.code,
                        bytes: resp.output.len() as u64,
                        fp: fp64(&resp.output),
                        latency_micros: t0.elapsed().as_micros() as u64,
                    });
                }
                Ok(records)
            },
        ));
    }
    let mut records: Vec<RequestRecord> = Vec::with_capacity(n * m);
    for h in handles {
        records.extend(
            h.join()
                .map_err(|_| "bench client panicked".to_string())??,
        );
    }
    let wall_micros = started.elapsed().as_micros() as u64;
    records.sort_by_key(|r| (r.client, r.index));

    // Shed drill: paused workers, distinct fresh bodies, bounded queue.
    let stats = control.request("stats", "")?;
    let capacity = stat_counter(&stats.output, "queue_capacity") as usize;
    if capacity == 0 {
        return Err("stats did not report queue_capacity".to_string());
    }
    let drill_requests = capacity + opts.shed_extra;
    let r = control.request("pause", "")?;
    if r.code != codes::OK {
        return Err(format!("pause failed: {}", r.output));
    }
    let mut drill = Vec::new();
    for i in 0..drill_requests {
        let socket = opts.socket.clone();
        let body = synth_body(
            opts.seed.wrapping_mul(1009).wrapping_add(10_000 + i as u64),
            5,
        );
        drill.push(std::thread::spawn(move || -> Result<u64, String> {
            let mut client = Client::connect(&socket)?;
            Ok(client.request("check", &body)?.code)
        }));
    }
    wait_for_work_requests(&mut control, (n * m + drill_requests) as u64)?;
    let r = control.request("resume", "")?;
    if r.code != codes::OK {
        return Err(format!("resume failed: {}", r.output));
    }
    let mut shed_observed = 0u64;
    for h in drill {
        let code = h
            .join()
            .map_err(|_| "drill client panicked".to_string())??;
        match code {
            codes::OVERLOADED => shed_observed += 1,
            codes::OK => {}
            other => return Err(format!("drill request got unexpected code {other}")),
        }
    }
    if shed_observed != opts.shed_extra as u64 {
        return Err(format!(
            "shed drill: expected exactly {} overloaded response(s), saw {shed_observed}",
            opts.shed_extra
        ));
    }

    // Final deterministic counters from the daemon.
    let stats = control.request("stats", "")?;
    let server_counter = |name: &str| stat_counter(&stats.output, name);
    let dedupe_hits = server_counter("dedupe_hits");
    let shed = server_counter("shed");
    let computed = server_counter("computed");
    let work_requests = server_counter("work_requests");
    let expected_dedupe = (n * m) as u64 - distinct_requests;
    if dedupe_hits != expected_dedupe {
        return Err(format!(
            "dedupe invariant: expected {expected_dedupe} hit(s) \
             ({} requests − {distinct_requests} distinct), daemon counted {dedupe_hits}",
            n * m
        ));
    }

    // The journal: per-request entries clocked by global index, then
    // the drill and counter summaries.
    let mut journal = Journal {
        source: "serve-bench".to_string(),
        ..Journal::default()
    };
    let mut latency = Histogram::new();
    let mut response_bytes_total = 0u64;
    let mut responses_ok = 0u64;
    for r in &records {
        journal.entries.push(JournalEntry {
            clock: (r.client * m + r.index) as u64,
            phase: "serve".to_string(),
            name: format!("client{}", r.client),
            event: r.kind.to_string(),
            fields: vec![
                ("body".to_string(), r.body_idx as u64),
                ("bytes".to_string(), r.bytes),
                ("code".to_string(), r.code),
                ("fp".to_string(), r.fp),
            ],
        });
        journal.histograms.record("serve.response_bytes", r.bytes);
        latency.record(r.latency_micros);
        response_bytes_total += r.bytes;
        responses_ok += u64::from(r.code == codes::OK);
    }
    journal.entries.push(JournalEntry {
        clock: (n * m) as u64,
        phase: "serve".to_string(),
        name: "drill".to_string(),
        event: "shed".to_string(),
        fields: vec![
            (
                "completed".to_string(),
                drill_requests as u64 - shed_observed,
            ),
            ("overloaded".to_string(), shed_observed),
            ("requests".to_string(), drill_requests as u64),
        ],
    });
    journal.entries.push(JournalEntry {
        clock: (n * m) as u64 + 1,
        phase: "serve".to_string(),
        name: "stats".to_string(),
        event: "counters".to_string(),
        fields: vec![
            ("computed".to_string(), computed),
            ("dedupe_hits".to_string(), dedupe_hits),
            ("distinct".to_string(), distinct_requests),
            ("shed".to_string(), shed),
            ("work_requests".to_string(), work_requests),
        ],
    });
    // Guard counters (supervision / recovery / degradation): all
    // deterministic — the bench injects no faults, so zeros here are
    // themselves an asserted-by-diff invariant.
    let worker_restarts = server_counter("worker_restarts");
    let quarantined = server_counter("quarantined");
    let stale_served = server_counter("stale_served");
    let deadline_exceeded = server_counter("deadline_exceeded");
    let wal_replayed = server_counter("wal_replayed");
    journal.entries.push(JournalEntry {
        clock: (n * m) as u64 + 2,
        phase: "serve".to_string(),
        name: "guard".to_string(),
        event: "counters".to_string(),
        fields: vec![
            ("deadline_exceeded".to_string(), deadline_exceeded),
            ("quarantined".to_string(), quarantined),
            ("retries".to_string(), 0),
            ("stale_served".to_string(), stale_served),
            ("wal_replayed".to_string(), wal_replayed),
            ("worker_restarts".to_string(), worker_restarts),
        ],
    });
    // Wall-clock distributions ride along under `_nondet` names, which
    // `strip-nondet` removes before CI's byte-diff.
    journal
        .histograms
        .merge_histogram("serve.latency_micros_nondet", &latency);
    if let Some(server_hists) = stats_histograms(&stats.output) {
        journal.histograms.merge(&server_hists);
    }

    // BENCH_serve.json: deterministic counters under plain keys,
    // wall-clock under `_nondet` leaves (flat, so the bench-diff gate
    // sees every nondet leaf as informational).
    let rps_x100 = if wall_micros == 0 {
        0
    } else {
        ((n * m) as u128 * 1_000_000 * 100 / wall_micros as u128) as u64
    };
    let mut fields = vec![
        ("schema".to_string(), Json::str("fearless-serve-bench/1")),
        ("clients".to_string(), Json::U64(n as u64)),
        ("requests_per_client".to_string(), Json::U64(m as u64)),
        ("bodies".to_string(), Json::U64(b as u64)),
        (
            "distinct_requests".to_string(),
            Json::U64(distinct_requests),
        ),
        ("work_requests".to_string(), Json::U64(work_requests)),
        ("dedupe_hits".to_string(), Json::U64(dedupe_hits)),
        ("shed_responses".to_string(), Json::U64(shed)),
        (
            "shed_drill_requests".to_string(),
            Json::U64(drill_requests as u64),
        ),
        ("queue_capacity".to_string(), Json::U64(capacity as u64)),
        ("computed".to_string(), Json::U64(computed)),
        ("responses_ok".to_string(), Json::U64(responses_ok)),
        ("worker_restarts".to_string(), Json::U64(worker_restarts)),
        ("quarantined".to_string(), Json::U64(quarantined)),
        ("stale_served".to_string(), Json::U64(stale_served)),
        (
            "deadline_exceeded".to_string(),
            Json::U64(deadline_exceeded),
        ),
        ("wal_replayed".to_string(), Json::U64(wal_replayed)),
        (
            "response_bytes_total".to_string(),
            Json::U64(response_bytes_total),
        ),
        (
            "journal_entries".to_string(),
            Json::U64(journal.entries.len() as u64),
        ),
        ("wall_micros_nondet".to_string(), Json::U64(wall_micros)),
        (
            "requests_per_sec_x100_nondet".to_string(),
            Json::U64(rps_x100),
        ),
        (
            "latency_p50_micros_nondet".to_string(),
            Json::U64(latency.quantile_lo(50)),
        ),
        (
            "latency_p99_micros_nondet".to_string(),
            Json::U64(latency.quantile_lo(99)),
        ),
    ];
    for (bucket, count) in latency.buckets() {
        fields.push((
            format!(
                "latency_lt_{}_micros_nondet",
                fearless_obs::bucket_hi(bucket)
            ),
            Json::U64(count),
        ));
    }
    let bench = Json::Obj(fields);

    let rps = rps_x100 / 100;
    let summary = format!(
        "serve-bench: {n} client(s) × {m} request(s) over {b} bodies (seed {}): {} ok, \
         {dedupe_hits} dedupe hit(s) ({distinct_requests} distinct), {shed} shed \
         ({drill_requests} drill requests vs queue {capacity}), p50 {}us p99 {}us, \
         {rps} req/s\n",
        opts.seed,
        responses_ok,
        latency.quantile_lo(50),
        latency.quantile_lo(99),
    );
    Ok(BenchOutcome {
        journal_text: journal.render(),
        bench_text: bench.render(),
        summary,
    })
}

/// The deterministic request assignment: kind cycles over the work
/// kinds by global index; the body index is a seeded SplitMix64 draw.
fn plan(seed: u64, bodies: usize, g: usize) -> (&'static str, usize) {
    let kind = WORK_KINDS[g % WORK_KINDS.len()];
    let body_idx = (splitmix(seed ^ (g as u64)) % bodies as u64) as usize;
    (kind, body_idx)
}

/// Polls `stats` until the daemon has admitted `want` work requests
/// since the last reset.
fn wait_for_work_requests(c: &mut Client, want: u64) -> Result<(), String> {
    for _ in 0..5000 {
        let r = c.request("stats", "")?;
        if stat_counter(&r.output, "work_requests") >= want {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    Err(format!("daemon never saw {want} work request(s)"))
}

/// Parses the histograms object out of a stats payload.
fn stats_histograms(stats_output: &str) -> Option<HistogramSet> {
    let doc = fearless_incr::parse_json(stats_output)?;
    let Json::Obj(fields) = &doc else {
        return None;
    };
    let hists = fields
        .iter()
        .find(|(n, _)| n == "histograms")
        .map(|(_, v)| v)?;
    HistogramSet::from_json_value(hists)
}
