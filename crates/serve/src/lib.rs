//! # fearless-serve
//!
//! The long-lived compiler-as-a-service daemon behind `fearlessc
//! serve` — the first half of the ROADMAP's "scale" item. A daemon
//! listens on a unix socket, speaks the length-prefixed JSON protocol
//! `fearless-serve/1` ([`protocol`]), keeps the incremental checker's
//! fingerprint cache hot in memory across requests (seeded from the
//! on-disk [`fearless_incr::disk::DiskCache`], written back on
//! shutdown), and dispatches `check` / `lint` / `flow` / `profile`
//! requests through the existing batched driver.
//!
//! Three service-level behaviours distinguish a daemon from a CLI in a
//! loop, and each is deterministic by construction:
//!
//! * **Dedupe** ([`server`]): requests are keyed by
//!   `kind:fingerprint(body)`. A key seen before returns the memoized
//!   response; a key currently in flight parks the caller on the one
//!   computation. Identical request bodies therefore always yield
//!   byte-identical response bodies, and the *total* dedupe count for a
//!   workload of `R` requests with `D` distinct keys is exactly
//!   `R − D`, independent of scheduling. Only the memo-vs-coalesce
//!   split is timing-dependent, and it is reported under `_nondet`
//!   stats keys.
//! * **Load shedding**: the work queue is bounded. An arrival that
//!   finds it full gets an immediate structured `overloaded` response
//!   with a retry-after hint — counted, never a hang and never a
//!   dropped connection.
//! * **Drain on shutdown**: a `shutdown` request or `SIGTERM` stops
//!   admission, finishes every queued and in-flight job, persists the
//!   fingerprint cache once, and only then closes the socket.
//!
//! [`client`] is the matching protocol client plus the `serve --once`
//! end-to-end self-test; [`mod@bench`] is the seeded `serve-bench` load
//! generator emitting a `fearless-obs/1` journal and a
//! bench-diff-gated `BENCH_serve.json`; [`report`] renders the
//! `report --serve` per-client table. See `docs/SERVE.md` for the
//! protocol grammar and the determinism contract.

#![warn(missing_docs)]

pub mod bench;
pub mod client;
pub mod protocol;
pub mod report;
pub mod server;

pub use bench::{run_bench, BenchOptions, BenchOutcome};
pub use client::{self_test, Client};
pub use protocol::{Request, Response};
pub use report::render_serve_report;
pub use server::{ServeOptions, Server};
