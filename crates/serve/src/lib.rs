//! # fearless-serve
//!
//! The long-lived compiler-as-a-service daemon behind `fearlessc
//! serve` — the first half of the ROADMAP's "scale" item. A daemon
//! listens on a unix socket, speaks the length-prefixed JSON protocol
//! `fearless-serve/1` ([`protocol`]), keeps the incremental checker's
//! fingerprint cache hot in memory across requests (seeded from the
//! on-disk [`fearless_incr::disk::DiskCache`], written back on
//! shutdown), and dispatches `check` / `lint` / `flow` / `profile`
//! requests through the existing batched driver.
//!
//! Three service-level behaviours distinguish a daemon from a CLI in a
//! loop, and each is deterministic by construction:
//!
//! * **Dedupe** ([`server`]): requests are keyed by
//!   `kind:fingerprint(body)`. A key seen before returns the memoized
//!   response; a key currently in flight parks the caller on the one
//!   computation. Identical request bodies therefore always yield
//!   byte-identical response bodies, and the *total* dedupe count for a
//!   workload of `R` requests with `D` distinct keys is exactly
//!   `R − D`, independent of scheduling. Only the memo-vs-coalesce
//!   split is timing-dependent, and it is reported under `_nondet`
//!   stats keys.
//! * **Load shedding**: the work queue is bounded. An arrival that
//!   finds it full gets an immediate structured `overloaded` response
//!   with a retry-after hint — counted, never a hang and never a
//!   dropped connection.
//! * **Drain on shutdown**: a `shutdown` request or `SIGTERM` stops
//!   admission, finishes every *in-flight* job, answers every still-
//!   queued job with a structured code 8 (`SHUTTING_DOWN`), persists
//!   the fingerprint cache once, and only then closes the socket.
//!
//! The *fearless-guard* layer adds supervision and recovery on top
//! (see `docs/GUARD.md`): workers run each request under
//! `catch_unwind` and are restarted by a supervisor when a request
//! panics (the request is retried once, then quarantined to a
//! memoized code 70); every fingerprint-cache mutation is journaled to
//! a checksummed write-ahead log so a `kill -9` loses at most in-flight
//! entries and a restart replays the WAL into byte-identical
//! responses; requests may carry a deterministic *logical* deadline
//! (`deadline_millis`, enforced against derivation-node cost, code 9)
//! and opt into stale-while-revalidate degradation (`allow_stale` →
//! `stale: true` answers from the previous memo generation instead of
//! shedding); and [`client::RetryPolicy`] gives clients bounded seeded
//! backoff honoring the server's `retry_after_millis` hint.
//!
//! [`client`] is the matching protocol client plus the `serve --once`
//! end-to-end self-test; [`mod@bench`] is the seeded `serve-bench` load
//! generator emitting a `fearless-obs/1` journal and a
//! bench-diff-gated `BENCH_serve.json`; [`report`] renders the
//! `report --serve` per-client table. See `docs/SERVE.md` for the
//! protocol grammar and the determinism contract.

#![warn(missing_docs)]

pub mod bench;
pub mod client;
pub mod protocol;
pub mod report;
pub mod server;

pub use bench::{run_bench, BenchOptions, BenchOutcome};
pub use client::{self_test, Client, RetryPolicy};
pub use protocol::{Request, Response};
pub use report::render_serve_report;
pub use server::{ServeOptions, Server};
