//! The protocol client plus the `serve --once` end-to-end self-test.

use std::io::Write as _;
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::protocol::{self, codes, Frame, Request, Response};
use crate::server::{ServeOptions, Server};

/// A connected protocol client. One request/response at a time; open
/// several clients for concurrency.
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connects to a daemon socket.
    ///
    /// # Errors
    ///
    /// Reports a missing or refusing socket.
    pub fn connect(socket: &Path) -> Result<Client, String> {
        let stream = UnixStream::connect(socket)
            .map_err(|e| format!("cannot connect to `{}`: {e}", socket.display()))?;
        Ok(Client { stream })
    }

    /// Sends one request and reads the response.
    ///
    /// # Errors
    ///
    /// Reports I/O failures or an unparseable response document.
    pub fn request(&mut self, kind: &str, body: &str) -> Result<Response, String> {
        let req = Request {
            kind: kind.to_string(),
            body: body.to_string(),
        };
        self.request_raw(req.to_json().as_bytes())
    }

    /// Sends raw frame bytes (the edge-case tests use this to send
    /// deliberately broken frames) and reads the response.
    ///
    /// # Errors
    ///
    /// Reports I/O failures or an unparseable response document.
    pub fn request_raw(&mut self, frame_body: &[u8]) -> Result<Response, String> {
        protocol::write_frame(&mut self.stream, frame_body)?;
        self.read_response()
    }

    /// Reads one response frame.
    ///
    /// # Errors
    ///
    /// Reports EOF, I/O failures, or an unparseable document.
    pub fn read_response(&mut self) -> Result<Response, String> {
        match protocol::read_frame(&mut self.stream, protocol::MAX_FRAME)? {
            Frame::Body(bytes) => {
                let text = String::from_utf8(bytes)
                    .map_err(|_| "response is not valid UTF-8".to_string())?;
                Response::from_json(&text).ok_or_else(|| format!("unparseable response: {text}"))
            }
            Frame::Eof => Err("daemon closed the connection".to_string()),
            Frame::Truncated => Err("daemon response was truncated".to_string()),
            Frame::Oversized(n) => Err(format!("daemon response oversized: {n} bytes")),
        }
    }

    /// Writes a deliberately broken frame: a header declaring
    /// `declared` bytes followed by only `sent` bytes, then shuts down
    /// the write half so the daemon sees a truncated frame but can
    /// still answer on the read half.
    ///
    /// # Errors
    ///
    /// Reports I/O failures.
    pub fn send_truncated(&mut self, declared: u32, sent: &[u8]) -> Result<(), String> {
        self.stream
            .write_all(&declared.to_be_bytes())
            .and_then(|()| self.stream.write_all(sent))
            .and_then(|()| self.stream.flush())
            .map_err(|e| format!("write: {e}"))?;
        self.stream
            .shutdown(std::net::Shutdown::Write)
            .map_err(|e| format!("shutdown: {e}"))
    }

    /// Writes only a frame header (no body will follow).
    ///
    /// # Errors
    ///
    /// Reports I/O failures.
    pub fn send_header_only(&mut self, declared: u32) -> Result<(), String> {
        self.stream
            .write_all(&declared.to_be_bytes())
            .and_then(|()| self.stream.flush())
            .map_err(|e| format!("write: {e}"))
    }
}

/// A tiny always-valid program for smoke requests.
pub const SMOKE_PROGRAM: &str = "def smoke(x: int): int { x + 1 }\n";

/// A program with a type error (an undefined callee).
pub const SMOKE_BROKEN: &str = "def broke(x: int): int { missing(x) }\n";

/// Runs the daemon in-process on `socket` and drives the whole protocol
/// end to end — every work kind, dedupe, pause/shed/resume, each
/// protocol edge case, and a draining shutdown. Returns the transcript
/// (one line per probe).
///
/// # Errors
///
/// Any probe that does not see its expected response fails the
/// self-test with a message naming the probe.
pub fn self_test(socket: &Path) -> Result<String, String> {
    let mut opts = ServeOptions::new(socket);
    opts.workers = 2;
    opts.queue_capacity = 2;
    let spawned = Server::spawn(opts)?;
    let result = run_probes(socket);
    // Always shut the daemon down, even when a probe failed.
    let mut shutdown = Client::connect(socket).and_then(|mut c| c.request("shutdown", ""));
    if shutdown.is_err() {
        // The daemon may already be draining; ask the spawner instead.
        shutdown = Ok(Response::ok(""));
    }
    let joined = spawned.shutdown_and_join();
    let mut out = result?;
    let shutdown = shutdown?;
    expect(
        "shutdown drains and persists",
        shutdown.code == codes::OK,
        &shutdown,
    )?;
    out.push_str("self-test: shutdown drained cleanly\n");
    joined?;
    out.push_str("self-test: all probes passed\n");
    Ok(out)
}

fn expect(probe: &str, ok: bool, got: &Response) -> Result<(), String> {
    if ok {
        Ok(())
    } else {
        Err(format!(
            "self-test probe `{probe}` failed: status {} code {} output {:?}",
            got.status, got.code, got.output
        ))
    }
}

fn run_probes(socket: &Path) -> Result<String, String> {
    let mut out = String::new();
    let mut c = Client::connect(socket)?;

    let r = c.request("ping", "")?;
    expect("ping", r.code == codes::OK && r.output == "pong", &r)?;
    out.push_str("self-test: ping → pong\n");

    // Every work kind round-trips on a valid program.
    for kind in protocol::WORK_KINDS {
        let r = c.request(kind, SMOKE_PROGRAM)?;
        expect(kind, r.code == codes::OK, &r)?;
        out.push_str(&format!(
            "self-test: {kind} → ok ({} bytes)\n",
            r.output.len()
        ));
    }

    // Diagnostics are structured responses, not hangs or closes.
    let r = c.request("check", SMOKE_BROKEN)?;
    expect("check diagnostic", r.code == codes::DIAGNOSTIC, &r)?;
    out.push_str("self-test: check (broken) → diagnostic\n");

    // A second client sending the same body must be deduped and get
    // byte-identical output.
    let first = c.request("check", SMOKE_PROGRAM)?;
    let mut c2 = Client::connect(socket)?;
    let second = c2.request("check", SMOKE_PROGRAM)?;
    expect(
        "dedupe byte-identity",
        first.to_json() == second.to_json(),
        &second,
    )?;
    let stats = c.request("stats", "")?;
    expect(
        "dedupe counted",
        stat_counter(&stats.output, "dedupe_hits") >= 1,
        &stats,
    )?;
    out.push_str("self-test: dedupe → byte-identical response, counted\n");

    // Load shedding: reset the counters, pause the workers, fill the
    // queue (capacity 2) with distinct bodies, and watch the third get
    // an explicit `overloaded` with a retry hint — deterministically,
    // never a hang.
    let r = c.request("reset", "")?;
    expect("reset", r.code == codes::OK, &r)?;
    let r = c.request("pause", "")?;
    expect("pause", r.code == codes::OK, &r)?;
    let parked: Vec<_> = (0..2)
        .map(|i| {
            let socket = socket.to_path_buf();
            std::thread::spawn(move || {
                let mut pc = Client::connect(&socket)?;
                pc.request(
                    "check",
                    &format!("def fill{i}(x: int): int {{ x + {i} }}\n"),
                )
            })
        })
        .collect();
    wait_for_queue_depth(&mut c, 2)?;
    let mut c3 = Client::connect(socket)?;
    let shed = c3.request("check", "def shed0(x: int): int { x + 99 }\n")?;
    expect(
        "shed",
        shed.status == "overloaded"
            && shed.code == codes::OVERLOADED
            && shed.retry_after_millis.is_some(),
        &shed,
    )?;
    let r = c.request("resume", "")?;
    expect("resume", r.code == codes::OK, &r)?;
    for p in parked {
        let r = p
            .join()
            .map_err(|_| "parked client panicked".to_string())??;
        expect(
            "parked client completes after resume",
            r.code == codes::OK,
            &r,
        )?;
    }
    out.push_str("self-test: shed → overloaded with retry hint; queue drained on resume\n");

    // Protocol edge cases: each a structured error with its own code.
    let mut e = Client::connect(socket)?;
    let r = e.request_raw(&[0xff, 0xfe, 0x80])?;
    expect("invalid utf-8", r.code == codes::INVALID_UTF8, &r)?;
    let r = e.request_raw(b"{ not json")?;
    expect("malformed json", r.code == codes::MALFORMED, &r)?;
    let r = e.request_raw(
        Request {
            kind: "dance".to_string(),
            body: String::new(),
        }
        .to_json()
        .as_bytes(),
    )?;
    expect("unknown kind", r.code == codes::UNKNOWN_KIND, &r)?;

    let mut e = Client::connect(socket)?;
    e.send_header_only(protocol::MAX_FRAME + 1)?;
    let r = e.read_response()?;
    expect("oversized frame", r.code == codes::OVERSIZED, &r)?;

    let mut e = Client::connect(socket)?;
    e.send_truncated(100, b"only forty bytes of the declared hundred")?;
    let r = e.read_response()?;
    expect("truncated frame", r.code == codes::TRUNCATED, &r)?;
    out.push_str(
        "self-test: oversized/truncated/invalid-utf8/unknown-kind/malformed → codes 2/3/4/5/6\n",
    );

    Ok(out)
}

/// Polls `stats` until `want` work requests have been enqueued since
/// the last reset (the paused queue is full).
fn wait_for_queue_depth(c: &mut Client, want: u64) -> Result<(), String> {
    for _ in 0..2000 {
        let r = c.request("stats", "")?;
        if stat_counter(&r.output, "work_requests") >= want {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    Err(format!("queue never reached depth {want}"))
}

/// Reads one counter out of a rendered stats document (0 when absent
/// or unparseable).
pub fn stat_counter(stats_output: &str, name: &str) -> u64 {
    use fearless_trace::Json;
    let Some(doc) = fearless_incr::parse_json(stats_output) else {
        return 0;
    };
    let get = |v: &Json, k: &str| -> Option<Json> {
        match v {
            Json::Obj(fields) => fields.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone()),
            _ => None,
        }
    };
    let counters = get(&doc, "counters").unwrap_or(Json::Null);
    match get(&counters, name).or_else(|| get(&doc, name)) {
        Some(Json::U64(n)) => n,
        _ => 0,
    }
}
