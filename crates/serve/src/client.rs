//! The protocol client plus the `serve --once` end-to-end self-test.

use std::io::Write as _;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

use crate::protocol::{self, codes, Frame, Request, Response};
use crate::server::{ServeOptions, Server, PANIC_MARKER};

/// Client-side retry policy for `overloaded` (code 7) responses:
/// bounded, seeded exponential backoff honoring the server's
/// `retry_after_millis` hint.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retrying).
    pub max_retries: u32,
    /// Base backoff when the response carries no hint.
    pub base_millis: u64,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl RetryPolicy {
    /// Defaults: 3 retries, 5 ms base, seed 42.
    pub fn new() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_millis: 5,
            seed: 42,
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::new()
    }
}

/// SplitMix64 — the same seeded generator the bench uses; here it only
/// jitters backoff sleeps (never response bytes).
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A connected protocol client. One request/response at a time; open
/// several clients for concurrency.
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connects to a daemon socket.
    ///
    /// # Errors
    ///
    /// Reports a missing or refusing socket.
    pub fn connect(socket: &Path) -> Result<Client, String> {
        let stream = UnixStream::connect(socket)
            .map_err(|e| format!("cannot connect to `{}`: {e}", socket.display()))?;
        Ok(Client { stream })
    }

    /// Sends one request and reads the response.
    ///
    /// # Errors
    ///
    /// Reports I/O failures or an unparseable response document.
    pub fn request(&mut self, kind: &str, body: &str) -> Result<Response, String> {
        self.request_with(kind, body, None)
    }

    /// Like [`Client::request`] with an optional logical deadline (see
    /// `codes::DEADLINE_EXCEEDED`).
    ///
    /// # Errors
    ///
    /// Reports I/O failures or an unparseable response document.
    pub fn request_with(
        &mut self,
        kind: &str,
        body: &str,
        deadline_millis: Option<u64>,
    ) -> Result<Response, String> {
        let mut req = Request::new(kind, body);
        req.deadline_millis = deadline_millis;
        self.request_raw(req.to_json().as_bytes())
    }

    /// Like [`Client::request`] but tolerating a previous-epoch answer:
    /// sets `allow_stale`, so under load the daemon may reply
    /// `stale: true` from the pre-`reset` memo instead of shedding.
    ///
    /// # Errors
    ///
    /// Reports I/O failures or an unparseable response document.
    pub fn request_stale_ok(&mut self, kind: &str, body: &str) -> Result<Response, String> {
        let mut req = Request::new(kind, body);
        req.allow_stale = true;
        self.request_raw(req.to_json().as_bytes())
    }

    /// Sends a fully-specified [`Request`] (deadline, staleness
    /// tolerance, anything future) and reads the response.
    ///
    /// # Errors
    ///
    /// Reports I/O failures or an unparseable response document.
    pub fn send(&mut self, req: &Request) -> Result<Response, String> {
        self.request_raw(req.to_json().as_bytes())
    }

    /// [`Client::send`] under a [`RetryPolicy`]: `overloaded` (code 7)
    /// responses are retried with bounded seeded backoff honoring the
    /// server's `retry_after_millis` hint. Returns the final response
    /// plus the retries spent; every non-7 response is final.
    ///
    /// # Errors
    ///
    /// Reports I/O failures or an unparseable response document.
    pub fn send_with_retry(
        &mut self,
        req: &Request,
        policy: RetryPolicy,
    ) -> Result<(Response, u32), String> {
        let mut retries = 0u32;
        loop {
            let r = self.send(req)?;
            if r.code != codes::OVERLOADED || retries >= policy.max_retries {
                return Ok((r, retries));
            }
            let hint = r.retry_after_millis.unwrap_or(policy.base_millis).max(1);
            // hint × 2^attempt plus seeded jitter in [0, hint), capped
            // so a hostile hint can never park the client for long.
            let backoff = hint.saturating_mul(1 << retries.min(6));
            let jitter = splitmix(policy.seed ^ u64::from(retries)) % hint;
            std::thread::sleep(Duration::from_millis((backoff + jitter).min(1000)));
            retries += 1;
        }
    }

    /// Sends a request, retrying `overloaded` (code 7) responses with
    /// bounded seeded exponential backoff that honors the server's
    /// `retry_after_millis` hint. Returns the final response plus how
    /// many retries were spent. Only code 7 retries — every other
    /// response (including errors) is final.
    ///
    /// # Errors
    ///
    /// Reports I/O failures or an unparseable response document.
    pub fn request_with_retry(
        &mut self,
        kind: &str,
        body: &str,
        deadline_millis: Option<u64>,
        policy: RetryPolicy,
    ) -> Result<(Response, u32), String> {
        let mut req = Request::new(kind, body);
        req.deadline_millis = deadline_millis;
        self.send_with_retry(&req, policy)
    }

    /// Sends raw frame bytes (the edge-case tests use this to send
    /// deliberately broken frames) and reads the response.
    ///
    /// # Errors
    ///
    /// Reports I/O failures or an unparseable response document.
    pub fn request_raw(&mut self, frame_body: &[u8]) -> Result<Response, String> {
        protocol::write_frame(&mut self.stream, frame_body)?;
        self.read_response()
    }

    /// Reads one response frame.
    ///
    /// # Errors
    ///
    /// Reports EOF, I/O failures, or an unparseable document.
    pub fn read_response(&mut self) -> Result<Response, String> {
        match protocol::read_frame(&mut self.stream, protocol::MAX_FRAME)? {
            Frame::Body(bytes) => {
                let text = String::from_utf8(bytes)
                    .map_err(|_| "response is not valid UTF-8".to_string())?;
                Response::from_json(&text).ok_or_else(|| format!("unparseable response: {text}"))
            }
            Frame::Eof => Err("daemon closed the connection".to_string()),
            Frame::Truncated => Err("daemon response was truncated".to_string()),
            Frame::Oversized(n) => Err(format!("daemon response oversized: {n} bytes")),
        }
    }

    /// Writes a deliberately broken frame: a header declaring
    /// `declared` bytes followed by only `sent` bytes, then shuts down
    /// the write half so the daemon sees a truncated frame but can
    /// still answer on the read half.
    ///
    /// # Errors
    ///
    /// Reports I/O failures.
    pub fn send_truncated(&mut self, declared: u32, sent: &[u8]) -> Result<(), String> {
        self.stream
            .write_all(&declared.to_be_bytes())
            .and_then(|()| self.stream.write_all(sent))
            .and_then(|()| self.stream.flush())
            .map_err(|e| format!("write: {e}"))?;
        self.stream
            .shutdown(std::net::Shutdown::Write)
            .map_err(|e| format!("shutdown: {e}"))
    }

    /// Writes only a frame header (no body will follow).
    ///
    /// # Errors
    ///
    /// Reports I/O failures.
    pub fn send_header_only(&mut self, declared: u32) -> Result<(), String> {
        self.stream
            .write_all(&declared.to_be_bytes())
            .and_then(|()| self.stream.flush())
            .map_err(|e| format!("write: {e}"))
    }
}

/// A tiny always-valid program for smoke requests.
pub const SMOKE_PROGRAM: &str = "def smoke(x: int): int { x + 1 }\n";

/// A program with a type error (an undefined callee).
pub const SMOKE_BROKEN: &str = "def broke(x: int): int { missing(x) }\n";

/// Runs the daemon in-process on `socket` and drives the whole protocol
/// end to end — every work kind, dedupe, pause/shed/resume, each
/// protocol edge case, the guard layer (deadlines, stale serves,
/// retries, worker supervision), and a draining shutdown. Returns the
/// transcript (one line per probe).
///
/// # Errors
///
/// Any probe that does not see its expected response fails the
/// self-test with a message naming the probe.
pub fn self_test(socket: &Path) -> Result<String, String> {
    let mut opts = ServeOptions::new(socket);
    opts.workers = 2;
    opts.queue_capacity = 2;
    opts.inject_faults = true;
    let spawned = Server::spawn(opts)?;
    let result = run_probes(socket);
    // Always shut the daemon down, even when a probe failed.
    let mut shutdown = Client::connect(socket).and_then(|mut c| c.request("shutdown", ""));
    if shutdown.is_err() {
        // The daemon may already be draining; ask the spawner instead.
        shutdown = Ok(Response::ok(""));
    }
    let joined = spawned.shutdown_and_join();
    let mut out = result?;
    let shutdown = shutdown?;
    expect(
        "shutdown drains and persists",
        shutdown.code == codes::OK,
        &shutdown,
    )?;
    out.push_str("self-test: shutdown drained cleanly\n");
    joined?;
    out.push_str("self-test: all probes passed\n");
    Ok(out)
}

fn expect(probe: &str, ok: bool, got: &Response) -> Result<(), String> {
    if ok {
        Ok(())
    } else {
        Err(format!(
            "self-test probe `{probe}` failed: status {} code {} output {:?}",
            got.status, got.code, got.output
        ))
    }
}

fn run_probes(socket: &Path) -> Result<String, String> {
    let mut out = String::new();
    let mut c = Client::connect(socket)?;

    let r = c.request("ping", "")?;
    expect("ping", r.code == codes::OK && r.output == "pong", &r)?;
    out.push_str("self-test: ping → pong\n");

    // Every work kind round-trips on a valid program.
    for kind in protocol::WORK_KINDS {
        let r = c.request(kind, SMOKE_PROGRAM)?;
        expect(kind, r.code == codes::OK, &r)?;
        out.push_str(&format!(
            "self-test: {kind} → ok ({} bytes)\n",
            r.output.len()
        ));
    }

    // Diagnostics are structured responses, not hangs or closes.
    let r = c.request("check", SMOKE_BROKEN)?;
    expect("check diagnostic", r.code == codes::DIAGNOSTIC, &r)?;
    out.push_str("self-test: check (broken) → diagnostic\n");

    // A second client sending the same body must be deduped and get
    // byte-identical output.
    let first = c.request("check", SMOKE_PROGRAM)?;
    let mut c2 = Client::connect(socket)?;
    let second = c2.request("check", SMOKE_PROGRAM)?;
    expect(
        "dedupe byte-identity",
        first.to_json() == second.to_json(),
        &second,
    )?;
    let stats = c.request("stats", "")?;
    expect(
        "dedupe counted",
        stat_counter(&stats.output, "dedupe_hits") >= 1,
        &stats,
    )?;
    out.push_str("self-test: dedupe → byte-identical response, counted\n");

    // Load shedding: reset the counters, pause the workers, fill the
    // queue (capacity 2) with distinct bodies, and watch the third get
    // an explicit `overloaded` with a retry hint — deterministically,
    // never a hang.
    let r = c.request("reset", "")?;
    expect("reset", r.code == codes::OK, &r)?;
    let r = c.request("pause", "")?;
    expect("pause", r.code == codes::OK, &r)?;
    let parked: Vec<_> = (0..2)
        .map(|i| {
            let socket = socket.to_path_buf();
            std::thread::spawn(move || {
                let mut pc = Client::connect(&socket)?;
                pc.request(
                    "check",
                    &format!("def fill{i}(x: int): int {{ x + {i} }}\n"),
                )
            })
        })
        .collect();
    wait_for_queue_depth(&mut c, 2)?;
    let mut c3 = Client::connect(socket)?;
    let shed = c3.request("check", "def shed0(x: int): int { x + 99 }\n")?;
    expect(
        "shed",
        shed.status == "overloaded"
            && shed.code == codes::OVERLOADED
            && shed.retry_after_millis.is_some(),
        &shed,
    )?;
    let r = c.request("resume", "")?;
    expect("resume", r.code == codes::OK, &r)?;
    for p in parked {
        let r = p
            .join()
            .map_err(|_| "parked client panicked".to_string())??;
        expect(
            "parked client completes after resume",
            r.code == codes::OK,
            &r,
        )?;
    }
    out.push_str("self-test: shed → overloaded with retry hint; queue drained on resume\n");

    // Protocol edge cases: each a structured error with its own code.
    let mut e = Client::connect(socket)?;
    let r = e.request_raw(&[0xff, 0xfe, 0x80])?;
    expect("invalid utf-8", r.code == codes::INVALID_UTF8, &r)?;
    let r = e.request_raw(b"{ not json")?;
    expect("malformed json", r.code == codes::MALFORMED, &r)?;
    let r = e.request_raw(Request::new("dance", "").to_json().as_bytes())?;
    expect("unknown kind", r.code == codes::UNKNOWN_KIND, &r)?;

    let mut e = Client::connect(socket)?;
    e.send_header_only(protocol::MAX_FRAME + 1)?;
    let r = e.read_response()?;
    expect("oversized frame", r.code == codes::OVERSIZED, &r)?;

    let mut e = Client::connect(socket)?;
    e.send_truncated(100, b"only forty bytes of the declared hundred")?;
    let r = e.read_response()?;
    expect("truncated frame", r.code == codes::TRUNCATED, &r)?;
    out.push_str(
        "self-test: oversized/truncated/invalid-utf8/unknown-kind/malformed → codes 2/3/4/5/6\n",
    );

    // Deterministic logical deadline: a zero budget always loses to any
    // real work; a generous budget always wins — no wall clock anywhere.
    let mut d = Client::connect(socket)?;
    let r = d.request_with("check", SMOKE_PROGRAM, Some(0))?;
    expect(
        "deadline 0 → code 9",
        r.code == codes::DEADLINE_EXCEEDED,
        &r,
    )?;
    let r = d.request_with("check", SMOKE_PROGRAM, Some(10_000))?;
    expect(
        "generous deadline met with cost attached",
        r.code == codes::OK && r.cost.is_some(),
        &r,
    )?;
    out.push_str("self-test: deadline 0 → deadline-exceeded (code 9); generous deadline → ok\n");

    // Stale-while-revalidate + bounded retries: reset moves the memo
    // generation into the stale pool; with the queue paused and full, a
    // previously-served key comes back `stale: true` while a fresh key
    // retries and finally sheds.
    let r = c.request("reset", "")?;
    expect("reset 2", r.code == codes::OK, &r)?;
    let r = c.request("pause", "")?;
    expect("pause 2", r.code == codes::OK, &r)?;
    let parked: Vec<_> = (2..4)
        .map(|i| {
            let socket = socket.to_path_buf();
            std::thread::spawn(move || {
                let mut pc = Client::connect(&socket)?;
                pc.request(
                    "check",
                    &format!("def fill{i}(x: int): int {{ x + {i} }}\n"),
                )
            })
        })
        .collect();
    wait_for_queue_depth(&mut c, 2)?;
    let mut s = Client::connect(socket)?;
    // Without the opt-in the stale pool is ignored and the full queue
    // sheds; with it the previous generation's answer comes back.
    let shed = s.request("lint", SMOKE_PROGRAM)?;
    expect(
        "no allow_stale → shed",
        shed.code == codes::OVERLOADED,
        &shed,
    )?;
    let stale = s.request_stale_ok("lint", SMOKE_PROGRAM)?;
    expect(
        "stale-while-revalidate",
        stale.code == codes::OK && stale.stale,
        &stale,
    )?;
    let policy = RetryPolicy {
        max_retries: 2,
        base_millis: 1,
        seed: 42,
    };
    let (r, retries) = s.request_with_retry(
        "check",
        "def fresh0(x: int): int { x + 99 }\n",
        None,
        policy,
    )?;
    expect(
        "bounded retries end in overloaded",
        r.code == codes::OVERLOADED && retries == policy.max_retries,
        &r,
    )?;
    let stats = c.request("stats", "")?;
    expect(
        "stale serve counted",
        stat_counter(&stats.output, "stale_served") == 1,
        &stats,
    )?;
    let r = c.request("resume", "")?;
    expect("resume 2", r.code == codes::OK, &r)?;
    for p in parked {
        let r = p
            .join()
            .map_err(|_| "parked client panicked".to_string())??;
        expect("parked client completes", r.code == codes::OK, &r)?;
    }
    out.push_str("self-test: stale → served stale: true under load; retries → bounded backoff\n");

    // Supervision: a body carrying the panic marker kills a worker, is
    // retried once on a fresh one, kills that too, and is quarantined
    // to a structured code 70 — and the daemon keeps serving.
    let mut q = Client::connect(socket)?;
    let r = q.request("check", &format!("{PANIC_MARKER}\n"))?;
    expect("quarantine → code 70", r.code == codes::ICE, &r)?;
    let stats = c.request("stats", "")?;
    expect(
        "two worker restarts counted",
        stat_counter(&stats.output, "worker_restarts") == 2,
        &stats,
    )?;
    expect(
        "one quarantine counted",
        stat_counter(&stats.output, "quarantined") == 1,
        &stats,
    )?;
    let r = q.request("check", SMOKE_PROGRAM)?;
    expect("daemon serves after crashes", r.code == codes::OK, &r)?;
    out.push_str(
        "self-test: worker panic ×2 → quarantined (code 70); supervisor restarted workers\n",
    );

    Ok(out)
}

/// Polls `stats` until `want` work requests have been enqueued since
/// the last reset (the paused queue is full).
fn wait_for_queue_depth(c: &mut Client, want: u64) -> Result<(), String> {
    for _ in 0..2000 {
        let r = c.request("stats", "")?;
        if stat_counter(&r.output, "work_requests") >= want {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    Err(format!("queue never reached depth {want}"))
}

/// Reads one counter out of a rendered stats document (0 when absent
/// or unparseable).
pub fn stat_counter(stats_output: &str, name: &str) -> u64 {
    use fearless_trace::Json;
    let Some(doc) = fearless_incr::parse_json(stats_output) else {
        return 0;
    };
    let get = |v: &Json, k: &str| -> Option<Json> {
        match v {
            Json::Obj(fields) => fields.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone()),
            _ => None,
        }
    };
    let counters = get(&doc, "counters").unwrap_or(Json::Null);
    match get(&counters, name).or_else(|| get(&doc, name)) {
        Some(Json::U64(n)) => n,
        _ => 0,
    }
}
