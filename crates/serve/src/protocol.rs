//! The `fearless-serve/1` wire protocol.
//!
//! A connection is a sequence of *frames* in each direction. A frame is
//! a 4-byte big-endian length followed by that many bytes of UTF-8
//! JSON. Requests carry a `kind` (a work kind — `check`, `lint`,
//! `flow`, `profile` — or a control kind) and, for work kinds, the
//! program source in `body`. Responses carry a `status`
//! (`ok`/`error`/`overloaded`), a numeric `code`, and the rendered
//! `output`; overloaded responses add a `retry_after_millis` hint.
//!
//! Malformed traffic never kills the daemon: every recognizable failure
//! gets a structured error response with a distinct [`code`](codes),
//! mirroring `fearlessc chaos`'s 2/3/4 exit-code contract for broken
//! inputs. Frames that desynchronize the stream (oversized or truncated)
//! are answered and then the connection is closed; in-frame failures
//! (invalid UTF-8, malformed JSON, unknown kind) keep the connection
//! usable.

use std::io::{Read, Write};

use fearless_trace::Json;

/// Schema tag carried by every request and response document.
pub const SCHEMA: &str = "fearless-serve/1";

/// Frames larger than this are rejected with [`codes::OVERSIZED`]
/// before any allocation happens.
pub const MAX_FRAME: u32 = 4 * 1024 * 1024;

/// Response codes. Work responses use `OK`/`DIAGNOSTIC`; protocol
/// failures get the distinct codes the edge-case tests pin (oversized =
/// 2, truncated = 3, invalid UTF-8 = 4 mirror the chaos subcommand's
/// exit-code contract for broken input files).
pub mod codes {
    /// The request was served.
    pub const OK: u64 = 0;
    /// The program was processed and produced diagnostics (a type or
    /// parse error); `output` is the rendered diagnostic.
    pub const DIAGNOSTIC: u64 = 1;
    /// The frame declared a length above [`super::MAX_FRAME`]; the
    /// connection closes after the response.
    pub const OVERSIZED: u64 = 2;
    /// The stream ended mid-frame; the response goes out on the
    /// (possibly half-open) socket and the connection closes.
    pub const TRUNCATED: u64 = 3;
    /// The frame body was not valid UTF-8.
    pub const INVALID_UTF8: u64 = 4;
    /// The request named a kind the daemon does not know.
    pub const UNKNOWN_KIND: u64 = 5;
    /// The frame body was not a JSON object with the required fields.
    pub const MALFORMED: u64 = 6;
    /// The work queue was full; the response carries a
    /// `retry_after_millis` hint and the request was *not* enqueued.
    pub const OVERLOADED: u64 = 7;
    /// The daemon is draining for shutdown and no longer accepts work.
    pub const SHUTTING_DOWN: u64 = 8;
    /// The request carried a `deadline_millis` budget and the work's
    /// *logical* cost (derivation nodes, converted at
    /// `DEADLINE_NODES_PER_MILLI`) exceeded it — a deterministic
    /// timeout: the same request and body always hit (or always miss)
    /// the same deadline, regardless of machine speed.
    pub const DEADLINE_EXCEEDED: u64 = 9;
    /// A panic escaped the request handler (an internal error in the
    /// daemon, never in the client's program) — the ICE boundary.
    pub const ICE: u64 = 70;
}

/// The work kinds a request may name, in protocol order.
pub const WORK_KINDS: &[&str] = &["check", "lint", "flow", "profile"];

/// The control kinds (no `body` required).
pub const CONTROL_KINDS: &[&str] = &["ping", "stats", "pause", "resume", "reset", "shutdown"];

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// One of [`WORK_KINDS`] or [`CONTROL_KINDS`].
    pub kind: String,
    /// Program source for work kinds (empty for control kinds).
    pub body: String,
    /// Optional logical deadline for work kinds. Enforced
    /// deterministically against the response's `cost_nodes` (see
    /// [`codes::DEADLINE_EXCEEDED`]); absent means no deadline.
    pub deadline_millis: Option<u64>,
    /// When `true`, the client tolerates a previous-epoch answer: under
    /// load the daemon may serve a memoized pre-`reset` result marked
    /// `stale: true` instead of shedding with [`codes::OVERLOADED`].
    pub allow_stale: bool,
}

impl Request {
    /// A request with no deadline and no staleness tolerance.
    pub fn new(kind: impl Into<String>, body: impl Into<String>) -> Request {
        Request {
            kind: kind.into(),
            body: body.into(),
            deadline_millis: None,
            allow_stale: false,
        }
    }

    /// Renders the request document.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            ("schema".to_string(), Json::str(SCHEMA)),
            ("kind".to_string(), Json::str(&self.kind)),
            ("body".to_string(), Json::str(&self.body)),
        ];
        if let Some(ms) = self.deadline_millis {
            fields.push(("deadline_millis".to_string(), Json::U64(ms)));
        }
        if self.allow_stale {
            fields.push(("allow_stale".to_string(), Json::Bool(true)));
        }
        Json::Obj(fields).render()
    }
}

/// A response document (the parsed form; the wire carries its JSON).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// `"ok"`, `"error"`, or `"overloaded"`.
    pub status: String,
    /// One of [`codes`].
    pub code: u64,
    /// Rendered output: a report, a diagnostic, or a JSON document.
    pub output: String,
    /// Backoff hint, present only on `overloaded` responses.
    pub retry_after_millis: Option<u64>,
    /// Logical cost of the work in derivation nodes (serialized as
    /// `cost_nodes`), present on successful work responses; what
    /// deadlines are enforced against.
    pub cost: Option<u64>,
    /// `true` when this is a previously-memoized result served in the
    /// stale-while-revalidate degrade path instead of shedding.
    pub stale: bool,
}

impl Response {
    /// An `ok` response.
    pub fn ok(output: impl Into<String>) -> Response {
        Response {
            status: "ok".to_string(),
            code: codes::OK,
            output: output.into(),
            retry_after_millis: None,
            cost: None,
            stale: false,
        }
    }

    /// An `error` response with a [`codes`] code.
    pub fn error(code: u64, output: impl Into<String>) -> Response {
        Response {
            status: "error".to_string(),
            code,
            output: output.into(),
            retry_after_millis: None,
            cost: None,
            stale: false,
        }
    }

    /// The load-shedding response: the queue was full, come back in
    /// `retry_after_millis`.
    pub fn overloaded(retry_after_millis: u64) -> Response {
        Response {
            status: "overloaded".to_string(),
            code: codes::OVERLOADED,
            output: "work queue full".to_string(),
            retry_after_millis: Some(retry_after_millis),
            cost: None,
            stale: false,
        }
    }

    /// Renders the response document (deterministic bytes: identical
    /// responses render identically).
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            ("schema".to_string(), Json::str(SCHEMA)),
            ("status".to_string(), Json::str(&self.status)),
            ("code".to_string(), Json::U64(self.code)),
            ("output".to_string(), Json::str(&self.output)),
        ];
        if let Some(ms) = self.retry_after_millis {
            fields.push(("retry_after_millis".to_string(), Json::U64(ms)));
        }
        if let Some(cost) = self.cost {
            fields.push(("cost_nodes".to_string(), Json::U64(cost)));
        }
        if self.stale {
            fields.push(("stale".to_string(), Json::Bool(true)));
        }
        Json::Obj(fields).render()
    }

    /// Parses a response document.
    pub fn from_json(text: &str) -> Option<Response> {
        let root = fearless_incr::parse_json(text)?;
        let Json::Obj(fields) = &root else {
            return None;
        };
        let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        if get("schema") != Some(&Json::str(SCHEMA)) {
            return None;
        }
        let status = match get("status")? {
            Json::Str(s) => s.clone(),
            _ => return None,
        };
        let code = match get("code")? {
            Json::U64(n) => *n,
            _ => return None,
        };
        let output = match get("output")? {
            Json::Str(s) => s.clone(),
            _ => return None,
        };
        let retry_after_millis = match get("retry_after_millis") {
            Some(Json::U64(n)) => Some(*n),
            _ => None,
        };
        let cost = match get("cost_nodes") {
            Some(Json::U64(n)) => Some(*n),
            _ => None,
        };
        let stale = matches!(get("stale"), Some(Json::Bool(true)));
        Some(Response {
            status,
            code,
            output,
            retry_after_millis,
            cost,
            stale,
        })
    }
}

/// What [`read_frame`] saw on the stream.
#[derive(Debug)]
pub enum Frame {
    /// A complete frame body.
    Body(Vec<u8>),
    /// Clean end of stream (no bytes of a next frame).
    Eof,
    /// The declared length exceeded [`MAX_FRAME`]; the stream is
    /// desynchronized and must be closed after responding.
    Oversized(u32),
    /// The stream ended mid-header or mid-body.
    Truncated,
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors other than a clean or mid-frame EOF (those are
/// [`Frame::Eof`] / [`Frame::Truncated`]).
pub fn read_frame(stream: &mut impl Read, max: u32) -> Result<Frame, String> {
    let mut header = [0u8; 4];
    match read_exact_or_eof(stream, &mut header) {
        ReadOutcome::Full => {}
        ReadOutcome::Empty => return Ok(Frame::Eof),
        ReadOutcome::Partial => return Ok(Frame::Truncated),
        ReadOutcome::Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(header);
    if len > max {
        return Ok(Frame::Oversized(len));
    }
    let mut body = vec![0u8; len as usize];
    match read_exact_or_eof(stream, &mut body) {
        ReadOutcome::Full => Ok(Frame::Body(body)),
        ReadOutcome::Empty | ReadOutcome::Partial => {
            if len == 0 {
                Ok(Frame::Body(body))
            } else {
                Ok(Frame::Truncated)
            }
        }
        ReadOutcome::Err(e) => Err(e),
    }
}

enum ReadOutcome {
    Full,
    Empty,
    Partial,
    Err(String),
}

fn read_exact_or_eof(stream: &mut impl Read, buf: &mut [u8]) -> ReadOutcome {
    let mut filled = 0usize;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    ReadOutcome::Empty
                } else {
                    ReadOutcome::Partial
                }
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return ReadOutcome::Err(format!("read: {e}")),
        }
    }
    if buf.is_empty() {
        // Zero-length reads cannot distinguish "empty" from "full";
        // treat as full (the caller allocated what the header declared).
        return ReadOutcome::Full;
    }
    ReadOutcome::Full
}

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O failures (e.g. the peer hung up).
pub fn write_frame(stream: &mut impl Write, body: &[u8]) -> Result<(), String> {
    let len =
        u32::try_from(body.len()).map_err(|_| format!("frame too large: {} bytes", body.len()))?;
    stream
        .write_all(&len.to_be_bytes())
        .and_then(|()| stream.write_all(body))
        .and_then(|()| stream.flush())
        .map_err(|e| format!("write: {e}"))
}

/// Parses a request document, mapping each failure to its protocol
/// code: invalid UTF-8 → 4, malformed JSON / wrong shape → 6, unknown
/// kind → 5.
pub fn parse_request(bytes: &[u8]) -> Result<Request, (u64, String)> {
    let text = std::str::from_utf8(bytes).map_err(|_| {
        (
            codes::INVALID_UTF8,
            "frame body is not valid UTF-8".to_string(),
        )
    })?;
    let malformed = || {
        (
            codes::MALFORMED,
            format!("frame body is not a `{SCHEMA}` request object"),
        )
    };
    let root = fearless_incr::parse_json(text).ok_or_else(malformed)?;
    let Json::Obj(fields) = &root else {
        return Err(malformed());
    };
    let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
    if get("schema") != Some(&Json::str(SCHEMA)) {
        return Err(malformed());
    }
    let kind = match get("kind") {
        Some(Json::Str(s)) => s.clone(),
        _ => return Err(malformed()),
    };
    if !WORK_KINDS.contains(&kind.as_str()) && !CONTROL_KINDS.contains(&kind.as_str()) {
        return Err((
            codes::UNKNOWN_KIND,
            format!("unknown request kind `{kind}`"),
        ));
    }
    let body = match get("body") {
        Some(Json::Str(s)) => s.clone(),
        None => String::new(),
        _ => return Err(malformed()),
    };
    let deadline_millis = match get("deadline_millis") {
        Some(Json::U64(n)) => Some(*n),
        None => None,
        _ => return Err(malformed()),
    };
    let allow_stale = match get("allow_stale") {
        Some(Json::Bool(b)) => *b,
        None => false,
        _ => return Err(malformed()),
    };
    Ok(Request {
        kind,
        body,
        deadline_millis,
        allow_stale,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"k\": 1}").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        match read_frame(&mut cursor, MAX_FRAME).unwrap() {
            Frame::Body(b) => assert_eq!(b, b"{\"k\": 1}"),
            other => panic!("expected body, got {other:?}"),
        }
        match read_frame(&mut cursor, MAX_FRAME).unwrap() {
            Frame::Eof => {}
            other => panic!("expected eof, got {other:?}"),
        }
    }

    #[test]
    fn oversized_and_truncated_frames_are_classified() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor, MAX_FRAME).unwrap(),
            Frame::Oversized(_)
        ));

        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_be_bytes());
        buf.extend_from_slice(b"only forty bytes of the declared hundred");
        let mut cursor = std::io::Cursor::new(buf);
        assert!(matches!(
            read_frame(&mut cursor, MAX_FRAME).unwrap(),
            Frame::Truncated
        ));

        // A torn header is also a truncation.
        let mut cursor = std::io::Cursor::new(vec![0u8, 0]);
        assert!(matches!(
            read_frame(&mut cursor, MAX_FRAME).unwrap(),
            Frame::Truncated
        ));
    }

    #[test]
    fn request_parsing_maps_failures_to_distinct_codes() {
        assert_eq!(
            parse_request(&[0xff, 0xfe]).unwrap_err().0,
            codes::INVALID_UTF8
        );
        assert_eq!(
            parse_request(b"{ not json").unwrap_err().0,
            codes::MALFORMED
        );
        assert_eq!(parse_request(b"[1, 2]").unwrap_err().0, codes::MALFORMED);
        let wrong_schema = b"{\"schema\": \"other/9\", \"kind\": \"check\"}";
        assert_eq!(parse_request(wrong_schema).unwrap_err().0, codes::MALFORMED);
        let unknown = Request::new("dance", "").to_json();
        assert_eq!(
            parse_request(unknown.as_bytes()).unwrap_err().0,
            codes::UNKNOWN_KIND
        );
        let ok = Request::new("check", "def f(): int { 1 }");
        assert_eq!(parse_request(ok.to_json().as_bytes()).unwrap(), ok);
    }

    #[test]
    fn deadline_roundtrips_and_bad_deadline_is_malformed() {
        let mut req = Request::new("check", "def f(): int { 1 }");
        req.deadline_millis = Some(50);
        assert_eq!(parse_request(req.to_json().as_bytes()).unwrap(), req);
        // Absent deadline parses as None (back-compat with v1 clients).
        let plain = Request::new("check", "x");
        assert_eq!(
            parse_request(plain.to_json().as_bytes())
                .unwrap()
                .deadline_millis,
            None
        );
        let bad = format!(
            "{{\"schema\": \"{SCHEMA}\", \"kind\": \"check\", \"deadline_millis\": \"soon\"}}"
        );
        assert_eq!(
            parse_request(bad.as_bytes()).unwrap_err().0,
            codes::MALFORMED
        );
    }

    #[test]
    fn allow_stale_roundtrips_and_bad_flag_is_malformed() {
        let mut req = Request::new("lint", "def f(): int { 1 }");
        req.allow_stale = true;
        assert_eq!(parse_request(req.to_json().as_bytes()).unwrap(), req);
        let plain = Request::new("lint", "x");
        assert!(
            !parse_request(plain.to_json().as_bytes())
                .unwrap()
                .allow_stale
        );
        let bad =
            format!("{{\"schema\": \"{SCHEMA}\", \"kind\": \"lint\", \"allow_stale\": \"yes\"}}");
        assert_eq!(
            parse_request(bad.as_bytes()).unwrap_err().0,
            codes::MALFORMED
        );
    }

    #[test]
    fn response_roundtrip_including_retry_hint() {
        let mut costed = Response::ok("ok: 1 function(s)\n");
        costed.cost = Some(412);
        let mut stale = Response::ok("ok: 1 function(s)\n");
        stale.stale = true;
        stale.cost = Some(7);
        for r in [
            Response::ok("ok: 1 function(s)\n"),
            Response::error(codes::DIAGNOSTIC, "type error"),
            Response::error(codes::DEADLINE_EXCEEDED, "deadline-exceeded"),
            Response::overloaded(25),
            costed,
            stale,
        ] {
            assert_eq!(Response::from_json(&r.to_json()).unwrap(), r);
        }
    }

    #[test]
    fn identical_responses_render_identical_bytes() {
        let a = Response::ok("same");
        let b = Response::ok("same");
        assert_eq!(a.to_json(), b.to_json());
    }
}
