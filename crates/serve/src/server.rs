//! The daemon: a unix-socket accept loop over a bounded work queue, a
//! fixed worker pool, a response memo keyed by content fingerprint, and
//! the in-memory fingerprint cache seeded from (and written back to)
//! the on-disk [`DiskCache`].
//!
//! ## Dedupe
//!
//! Work requests are keyed by `kind:fnv64(body)`. A key that already
//! has a completed response replays it from the memo; a key that is
//! in flight parks the new client on the first derivation's waiter
//! list. Both count as `dedupe_hits` — for a fixed request multiset the
//! total is deterministic (`requests − distinct keys`) even though the
//! memo/coalesce split depends on scheduling.
//!
//! ## Load shedding
//!
//! The queue is bounded. A work request that finds the queue full is
//! answered immediately with an `overloaded` response carrying a
//! retry-after hint — counted, never enqueued, never a hang.
//!
//! ## Shutdown
//!
//! A `shutdown` request (or SIGTERM) stops admission, rejects every
//! *queued* job with a structured code 8, finishes all in-flight work,
//! writes the fingerprint cache back to disk, and only then replies /
//! returns.
//!
//! ## Supervision (`fearless-guard`)
//!
//! Each worker runs requests under `catch_unwind`. A panic kills the
//! worker *incarnation*: the supervisor restarts it (counted as
//! `worker_restarts`) and the offending job is retried once on a fresh
//! worker. A job that kills two workers is *quarantined*: its key is
//! memoized to a structured code-70 response so it can never take the
//! daemon down again (`quarantined` counter). Because panics are
//! deterministic in the request body, so are both counters.
//!
//! ## Crash recovery
//!
//! With a persistent cache directory, every fingerprint-cache mutation
//! is appended to a checksummed write-ahead journal
//! ([`fearless_incr::wal`]) *before* the response leaves the daemon. A
//! SIGKILL therefore loses at most in-flight entries; on restart the
//! WAL is replayed into the loaded cache and compacted. Cache warmth
//! never changes response bytes, so post-crash responses are
//! byte-identical to an uninterrupted run — the chaos drill pins this.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use fearless_core::CheckerOptions;
use fearless_incr::disk::checksum_hex;
use fearless_incr::wal::CacheWal;
use fearless_incr::DiskCache;
use fearless_obs::HistogramSet;
use fearless_trace::{Json, MemorySink, TraceSink, Tracer};

use crate::protocol::{self, codes, Frame, Request, Response};

/// Schema tag of the `stats` response payload.
pub const STATS_SCHEMA: &str = "fearless-serve-stats/1";

/// Conversion rate for the deterministic logical deadline: a
/// `deadline_millis` budget of `d` admits work costing at most
/// `d × DEADLINE_NODES_PER_MILLI` derivation nodes. Logical cost, not
/// wall clock, so the same request always hits (or always misses) its
/// deadline on every machine.
pub const DEADLINE_NODES_PER_MILLI: u64 = 1000;

/// Request bodies containing this marker panic inside the worker when
/// [`ServeOptions::inject_faults`] is on — the chaos drills' driver for
/// deterministic worker-crash injection.
pub const PANIC_MARKER: &str = "fearless-guard: inject-panic";

/// Request bodies containing this marker stall the worker ~250ms before
/// computing when [`ServeOptions::inject_faults`] is on — the drills'
/// way of pinning a job in-flight while a signal races the accept loop.
pub const STALL_MARKER: &str = "fearless-guard: inject-stall";

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Unix socket path to listen on.
    pub socket: PathBuf,
    /// Worker threads executing queued work.
    pub workers: usize,
    /// Bound on the work queue; a full queue sheds.
    pub queue_capacity: usize,
    /// Persistent fingerprint-cache directory (`None`: in-memory only).
    pub cache_dir: Option<PathBuf>,
    /// Backoff hint stamped on `overloaded` responses.
    pub retry_after_millis: u64,
    /// When true, request bodies containing [`PANIC_MARKER`] panic in
    /// the worker — the deterministic fault injection the chaos drills
    /// and the self-test use to exercise supervision. Off by default.
    pub inject_faults: bool,
}

impl ServeOptions {
    /// Defaults for a given socket path: 2 workers, queue of 16,
    /// ephemeral cache, 25 ms retry hint, no fault injection.
    pub fn new(socket: impl Into<PathBuf>) -> ServeOptions {
        ServeOptions {
            socket: socket.into(),
            workers: 2,
            queue_capacity: 16,
            cache_dir: None,
            retry_after_millis: 25,
            inject_faults: false,
        }
    }
}

/// Service counters, all monotonic within a `reset` window.
#[derive(Debug, Clone, Copy, Default)]
pub struct Counters {
    /// Work requests admitted to dispatch (check/lint/flow/profile).
    pub work_requests: u64,
    /// Control requests (ping/stats/pause/resume/reset/shutdown).
    pub control_requests: u64,
    /// Work requests answered from the memo or coalesced onto an
    /// in-flight derivation (`memo_hits + coalesced`).
    pub dedupe_hits: u64,
    /// Dedupe hits replayed from the completed-response memo.
    pub memo_hits: u64,
    /// Dedupe hits parked on an in-flight derivation.
    pub coalesced: u64,
    /// Work requests answered `overloaded` (queue full).
    pub shed: u64,
    /// Work requests answered after the drain began.
    pub rejected_draining: u64,
    /// Derivations actually executed (distinct keys computed).
    pub computed: u64,
    /// Work responses with code 0.
    pub responses_ok: u64,
    /// Work responses with code 1 (diagnostics).
    pub responses_diag: u64,
    /// Responses with code 70 (a panic caught at the ICE boundary).
    pub ice_responses: u64,
    /// Structured protocol-error responses (codes 2–6).
    pub protocol_errors: u64,
    /// Worker incarnations restarted by the supervisor after a panic.
    pub worker_restarts: u64,
    /// Requests quarantined after killing two workers (memoized to a
    /// code-70 response).
    pub quarantined: u64,
    /// Work responses answered `stale: true` from the previous memo
    /// generation instead of shedding.
    pub stale_served: u64,
    /// Work requests whose logical cost exceeded their
    /// `deadline_millis` budget (code 9).
    pub deadline_exceeded: u64,
}

struct Job {
    key: String,
    kind: String,
    body: Arc<String>,
}

struct State {
    queue: VecDeque<Job>,
    inflight: BTreeSet<String>,
    waiters: BTreeMap<String, Vec<Sender<Arc<Response>>>>,
    memo: BTreeMap<String, Arc<Response>>,
    /// The previous memo generation, kept across `reset` — the
    /// stale-while-revalidate degrade pool: a shed-bound request whose
    /// key is here and that set `allow_stale` is answered `stale: true`
    /// instead of `overloaded`.
    stale_memo: BTreeMap<String, Arc<Response>>,
    /// Per-key worker-crash counts driving retry-then-quarantine.
    crashes: BTreeMap<String, u32>,
    paused: bool,
    draining: bool,
    counters: Counters,
    hists: HistogramSet,
}

struct Shared {
    opts: ServeOptions,
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
    cache: Mutex<DiskCache>,
    /// The open write-ahead journal (`None`: ephemeral cache, or the
    /// WAL could not be opened and the daemon degraded to running
    /// without one).
    wal: Mutex<Option<CacheWal>>,
    /// Records appended to the WAL this run (warmth-dependent: a warm
    /// cache appends nothing).
    wal_appends: AtomicU64,
    /// Records replayed from the WAL at startup (the signature of
    /// recovering from a crash).
    wal_replayed: AtomicU64,
    stop_accept: AtomicBool,
    saved: AtomicBool,
}

/// Set by the SIGTERM handler; the accept loop treats it exactly like a
/// `shutdown` request.
static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

type SigHandler = extern "C" fn(i32);

extern "C" {
    fn signal(signum: i32, handler: SigHandler) -> usize;
}

extern "C" fn on_sigterm(_signum: i32) {
    TERM_REQUESTED.store(true, Ordering::SeqCst);
}

const SIGTERM: i32 = 15;

/// Installs the SIGTERM → graceful-drain handler (async-signal-safe:
/// the handler only stores to an atomic the accept loop polls).
pub fn install_sigterm() {
    // SAFETY: `signal(2)` with a handler that performs a single atomic
    // store, which is async-signal-safe.
    unsafe {
        signal(SIGTERM, on_sigterm);
    }
}

/// A running daemon bound to its socket.
pub struct Server {
    shared: Arc<Shared>,
    listener: UnixListener,
}

/// An in-process daemon running on a background thread (tests,
/// `serve --once`, and `serve-bench --spawn`).
pub struct SpawnedServer {
    /// The daemon's shared state (for [`Server::run`]'s return value).
    handle: std::thread::JoinHandle<Result<String, String>>,
    shared: Arc<Shared>,
}

impl SpawnedServer {
    /// Requests a drain (as SIGTERM would) and joins the daemon,
    /// returning its summary.
    ///
    /// # Errors
    ///
    /// Propagates the daemon's error, or reports a panicked thread.
    pub fn shutdown_and_join(self) -> Result<String, String> {
        self.shared.stop_accept.store(true, Ordering::SeqCst);
        self.handle
            .join()
            .map_err(|_| "serve thread panicked".to_string())?
    }
}

impl Server {
    /// Binds the socket (replacing a stale socket file) and loads the
    /// fingerprint cache.
    ///
    /// # Errors
    ///
    /// Reports a socket that cannot be bound.
    pub fn bind(opts: ServeOptions) -> Result<Server, String> {
        let _ = std::fs::remove_file(&opts.socket);
        let listener = UnixListener::bind(&opts.socket)
            .map_err(|e| format!("cannot bind `{}`: {e}", opts.socket.display()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot set nonblocking: {e}"))?;
        let mut cache = match &opts.cache_dir {
            Some(dir) => DiskCache::load(dir),
            None => DiskCache::ephemeral(),
        };
        // Crash recovery: replay the write-ahead journal into the
        // loaded cache, compact (save the merged document, truncate the
        // WAL), and keep the WAL open for this run's appends. A WAL
        // that cannot be opened degrades to running without one — the
        // daemon still works, it just loses crash durability.
        let mut wal = None;
        let mut wal_replayed = 0u64;
        if let Some(dir) = &opts.cache_dir {
            cache.enable_dirty_log();
            let replayed = fearless_incr::wal::replay(dir);
            wal_replayed = cache.apply_wal(&replayed.records) as u64;
            if let Ok(mut w) = CacheWal::open(dir) {
                if !replayed.records.is_empty() || replayed.torn {
                    let _ = cache.save();
                    let _ = w.reset();
                }
                wal = Some(w);
            }
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                inflight: BTreeSet::new(),
                waiters: BTreeMap::new(),
                memo: BTreeMap::new(),
                stale_memo: BTreeMap::new(),
                crashes: BTreeMap::new(),
                paused: false,
                draining: false,
                counters: Counters::default(),
                hists: HistogramSet::new(),
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            cache: Mutex::new(cache),
            wal: Mutex::new(wal),
            wal_appends: AtomicU64::new(0),
            wal_replayed: AtomicU64::new(wal_replayed),
            stop_accept: AtomicBool::new(false),
            saved: AtomicBool::new(false),
            opts,
        });
        Ok(Server { shared, listener })
    }

    /// Binds and runs the daemon on a background thread, returning once
    /// the socket accepts connections.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn(opts: ServeOptions) -> Result<SpawnedServer, String> {
        let server = Server::bind(opts)?;
        let shared = Arc::clone(&server.shared);
        let handle = std::thread::spawn(move || server.run());
        // The listener exists before the thread starts; a connect can
        // only race the accept loop, which is fine (it queues).
        Ok(SpawnedServer { handle, shared })
    }

    /// Runs the accept loop until a `shutdown` request or SIGTERM, then
    /// drains in-flight work, writes the cache back, and returns a
    /// summary line.
    ///
    /// # Errors
    ///
    /// Propagates cache write-back failures.
    pub fn run(self) -> Result<String, String> {
        let workers: Vec<_> = (0..self.shared.opts.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&self.shared);
                std::thread::spawn(move || supervised_worker(&shared))
            })
            .collect();
        loop {
            // `swap` *consumes* the signal: a supervisor restarting a
            // daemon in the same process gets a fresh flag.
            if TERM_REQUESTED.swap(false, Ordering::SeqCst)
                || self.shared.stop_accept.load(Ordering::SeqCst)
            {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self.shared);
                    std::thread::spawn(move || handle_connection(&shared, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("accept: {e}")),
            }
        }
        // Drain: stop admitting, finish the queue and in-flight work.
        drain(&self.shared);
        for w in workers {
            let _ = w.join();
        }
        save_cache_once(&self.shared)?;
        let st = lock_state(&self.shared);
        let c = st.counters;
        let cache_entries = self.shared.cache.lock().map(|c| c.len()).unwrap_or(0);
        drop(st);
        let _ = std::fs::remove_file(&self.shared.opts.socket);
        Ok(format!(
            "serve: drained and stopped; {} work request(s), {} dedupe hit(s), {} shed, {} \
             derivation(s) computed, {} cache entr(ies) persisted\n",
            c.work_requests, c.dedupe_hits, c.shed, c.computed, cache_entries
        ))
    }
}

fn lock_state(shared: &Shared) -> MutexGuard<'_, State> {
    shared.state.lock().unwrap_or_else(|e| e.into_inner())
}

/// Marks the drain, rejects every *queued* job with a structured code
/// 8, wakes everyone, and blocks until in-flight work is empty.
fn drain(shared: &Shared) {
    let mut st = lock_state(shared);
    st.draining = true;
    st.paused = false;
    reject_queued(shared, &mut st);
    shared.work_cv.notify_all();
    while !st.inflight.is_empty() {
        st = shared.done_cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
}

/// Empties the work queue, answering every parked waiter with code 8
/// (`rejected_draining` counts them). In-flight jobs — already popped
/// by a worker — are untouched and will complete.
fn reject_queued(shared: &Shared, st: &mut State) {
    if st.queue.is_empty() {
        return;
    }
    let r = Arc::new(Response::error(
        codes::SHUTTING_DOWN,
        "daemon is draining for shutdown; queued request rejected",
    ));
    while let Some(job) = st.queue.pop_front() {
        st.counters.rejected_draining += 1;
        st.inflight.remove(&job.key);
        for tx in st.waiters.remove(&job.key).unwrap_or_default() {
            let _ = tx.send(Arc::clone(&r));
        }
    }
    shared.done_cv.notify_all();
}

/// Writes the fingerprint cache back exactly once (the `shutdown`
/// request and the accept loop's exit path both call this), then
/// compacts the write-ahead journal — the saved document now holds
/// everything the WAL held.
fn save_cache_once(shared: &Shared) -> Result<(), String> {
    if shared.saved.swap(true, Ordering::SeqCst) {
        return Ok(());
    }
    shared
        .cache
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .save()?;
    let mut wal = shared.wal.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(w) = wal.as_mut() {
        let _ = w.reset();
    }
    Ok(())
}

/// How one worker incarnation ended.
enum WorkerExit {
    /// The drain completed; the worker retires for good.
    Drained,
    /// A panic escaped a job — the incarnation is dead and the
    /// supervisor must start a fresh one.
    Died,
}

/// The supervisor: restarts a worker incarnation every time a panic
/// kills one (`worker_restarts` is counted in [`handle_worker_crash`],
/// under the lock, so stats observed after a quarantine response never
/// race the restart); retires only on drain.
fn supervised_worker(shared: &Shared) {
    loop {
        match worker_loop(shared) {
            WorkerExit::Drained => return,
            WorkerExit::Died => {}
        }
    }
}

fn worker_loop(shared: &Shared) -> WorkerExit {
    loop {
        let job = {
            let mut st = lock_state(shared);
            loop {
                if st.draining && st.queue.is_empty() {
                    return WorkerExit::Drained;
                }
                if !st.paused || st.draining {
                    if let Some(job) = st.queue.pop_front() {
                        break job;
                    }
                }
                st = shared.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        let kind = job.kind.clone();
        let body = Arc::clone(&job.body);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            compute(&kind, &body, shared)
        }));
        let response = match outcome {
            Ok(r) => Arc::new(r),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "panic".to_string());
                handle_worker_crash(shared, job, &msg);
                return WorkerExit::Died;
            }
        };
        // Durability point: the WAL append happens before any waiter
        // sees the response, so a response a client observed is never
        // lost to a crash (at most re-derived identically).
        flush_dirty_to_wal(shared);
        let waiters = {
            let mut st = lock_state(shared);
            st.memo.insert(job.key.clone(), Arc::clone(&response));
            st.counters.computed += 1;
            st.inflight.remove(&job.key);
            let waiters = st.waiters.remove(&job.key).unwrap_or_default();
            shared.done_cv.notify_all();
            waiters
        };
        for tx in waiters {
            let _ = tx.send(Arc::clone(&response));
        }
    }
}

/// The supervision policy for a job whose compute panicked: the first
/// crash re-queues it at the front (one retry on a fresh worker); the
/// second quarantines it — the key is memoized to a structured code-70
/// response so every future identical request answers instantly and no
/// worker ever touches the body again.
fn handle_worker_crash(shared: &Shared, job: Job, msg: &str) {
    let mut st = lock_state(shared);
    // The incarnation is dead; the supervisor will start a fresh one.
    st.counters.worker_restarts += 1;
    let count = {
        let c = st.crashes.entry(job.key.clone()).or_insert(0);
        *c += 1;
        *c
    };
    if count < 2 {
        st.queue.push_front(job);
        shared.work_cv.notify_one();
        return;
    }
    let response = Arc::new(Response::error(
        codes::ICE,
        format!("internal error: request quarantined after {count} worker crash(es): {msg}"),
    ));
    st.memo.insert(job.key.clone(), Arc::clone(&response));
    st.counters.quarantined += 1;
    st.inflight.remove(&job.key);
    let waiters = st.waiters.remove(&job.key).unwrap_or_default();
    shared.done_cv.notify_all();
    drop(st);
    for tx in waiters {
        let _ = tx.send(Arc::clone(&response));
    }
}

/// Drains the cache's dirty log into the write-ahead journal (no-op
/// for ephemeral caches or when the WAL failed to open).
fn flush_dirty_to_wal(shared: &Shared) {
    let dirty = shared
        .cache
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take_dirty();
    if dirty.is_empty() {
        return;
    }
    let mut wal = shared.wal.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(w) = wal.as_mut() {
        if let Ok(n) = w.append(&dirty) {
            shared.wal_appends.fetch_add(n as u64, Ordering::SeqCst);
        }
    }
}

/// The actual pipelines. Every output here is deterministic in the
/// request body alone — the determinism contract `docs/SERVE.md` pins —
/// because the underlying drivers are (cache warmth never shows in
/// `check` output, and `profile` runs without wall clock). Successful
/// responses carry their logical cost in derivation nodes (the basis
/// of the deterministic deadline); diagnostics carry none and are
/// therefore never deadline-rejected.
fn compute(kind: &str, src: &str, shared: &Shared) -> Response {
    if shared.opts.inject_faults && src.contains(PANIC_MARKER) {
        panic!("injected worker fault ({PANIC_MARKER})");
    }
    if shared.opts.inject_faults && src.contains(STALL_MARKER) {
        std::thread::sleep(Duration::from_millis(250));
    }
    let opts = CheckerOptions::default();
    match kind {
        "check" => {
            let program = match fearless_syntax::parse_program(src) {
                Ok(p) => p,
                Err(e) => return Response::error(codes::DIAGNOSTIC, e.render(src)),
            };
            let units = vec![(String::new(), program)];
            let mut cache = shared.cache.lock().unwrap_or_else(|e| e.into_inner());
            let run =
                fearless_incr::check_units(&units, &opts, 1, Some(&mut cache), &mut Tracer::off());
            drop(cache);
            match run.units[0].first_error() {
                Some(e) => Response::error(codes::DIAGNOSTIC, e.render(src)),
                None => {
                    let mut r = Response::ok(format!(
                        "ok: {} function(s), {} derivation nodes, {} virtual transformations\n",
                        run.units[0].functions.len(),
                        run.units[0].total_nodes(),
                        run.units[0].total_vir_steps()
                    ));
                    r.cost = Some(run.units[0].total_nodes());
                    r
                }
            }
        }
        "lint" => {
            let checked = match fearless_core::check_source(src, &opts) {
                Ok(c) => c,
                Err(e) => return Response::error(codes::DIAGNOSTIC, e.render(src)),
            };
            match fearless_analyze::analyze_program(&checked) {
                Ok(report) => {
                    let mut r = Response::ok(report.to_json(src));
                    r.cost = Some(checked.total_nodes() as u64);
                    r
                }
                Err(msg) => Response::error(codes::DIAGNOSTIC, msg),
            }
        }
        "flow" => {
            let checked = match fearless_core::check_source(src, &opts) {
                Ok(c) => c,
                Err(e) => return Response::error(codes::DIAGNOSTIC, e.render(src)),
            };
            match fearless_flow::analyze_checked(&checked) {
                Ok(flow) => {
                    let mut out = flow.to_json();
                    out.push('\n');
                    let mut r = Response::ok(out);
                    r.cost = Some(checked.total_nodes() as u64);
                    r
                }
                Err(e) => Response::error(codes::DIAGNOSTIC, e.to_string()),
            }
        }
        "profile" => {
            let mut sink = MemorySink::new();
            sink.span_enter("parse", "program");
            let parsed = fearless_syntax::parse_program(src);
            sink.span_exit();
            let program = match parsed {
                Ok(p) => p,
                Err(e) => return Response::error(codes::DIAGNOSTIC, e.render(src)),
            };
            let checked = match fearless_core::check_program_traced(
                &program,
                &opts,
                &mut Tracer::new(&mut sink),
            ) {
                Ok(c) => c,
                Err(e) => return Response::error(codes::DIAGNOSTIC, e.render(src)),
            };
            // Logical counters only: no wall clock, so identical bodies
            // yield byte-identical profiles.
            let mut r = Response::ok(sink.to_json_value_opts(false).render());
            r.cost = Some(checked.total_nodes() as u64);
            r
        }
        other => Response::error(codes::UNKNOWN_KIND, format!("unknown work kind `{other}`")),
    }
}

fn handle_connection(shared: &Shared, mut stream: UnixStream) {
    loop {
        match protocol::read_frame(&mut stream, protocol::MAX_FRAME) {
            Ok(Frame::Eof) => return,
            Ok(Frame::Oversized(len)) => {
                // The stream is desynchronized: answer and hang up.
                note_protocol_error(shared);
                let r = Response::error(
                    codes::OVERSIZED,
                    format!(
                        "frame of {len} bytes exceeds the {}-byte limit",
                        protocol::MAX_FRAME
                    ),
                );
                let _ = protocol::write_frame(&mut stream, r.to_json().as_bytes());
                return;
            }
            Ok(Frame::Truncated) => {
                // The peer may have shut down only its write half; the
                // structured response still goes out before we close.
                note_protocol_error(shared);
                let r = Response::error(codes::TRUNCATED, "stream ended mid-frame");
                let _ = protocol::write_frame(&mut stream, r.to_json().as_bytes());
                return;
            }
            Ok(Frame::Body(bytes)) => {
                let response = match protocol::parse_request(&bytes) {
                    Ok(req) => respond(shared, &req),
                    Err((code, msg)) => {
                        note_protocol_error(shared);
                        Response::error(code, msg)
                    }
                };
                if protocol::write_frame(&mut stream, response.to_json().as_bytes()).is_err() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn note_protocol_error(shared: &Shared) {
    lock_state(shared).counters.protocol_errors += 1;
}

fn respond(shared: &Shared, req: &Request) -> Response {
    if protocol::WORK_KINDS.contains(&req.kind.as_str()) {
        return dispatch_work(shared, req);
    }
    let mut st = lock_state(shared);
    st.counters.control_requests += 1;
    match req.kind.as_str() {
        "ping" => Response::ok("pong"),
        "pause" => {
            st.paused = true;
            Response::ok("paused")
        }
        "resume" => {
            st.paused = false;
            shared.work_cv.notify_all();
            Response::ok("resumed")
        }
        "reset" => {
            // Bench hygiene: clear the response memo, counters, and
            // histograms so two identically-seeded load runs observe
            // identical deterministic counters. The fingerprint cache
            // deliberately stays hot — it never changes response bytes.
            // The outgoing memo generation moves to the stale pool: a
            // later shed-bound request for one of these keys is served
            // `stale: true` instead of `overloaded`.
            let outgoing = std::mem::take(&mut st.memo);
            st.stale_memo.extend(outgoing);
            st.crashes.clear();
            st.counters = Counters::default();
            st.hists = HistogramSet::new();
            Response::ok("reset")
        }
        "stats" => {
            let doc = stats_doc(shared, &st);
            Response::ok(doc.render())
        }
        "shutdown" => {
            st.draining = true;
            st.paused = false;
            reject_queued(shared, &mut st);
            shared.work_cv.notify_all();
            while !st.inflight.is_empty() {
                st = shared.done_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            let computed = st.counters.computed;
            drop(st);
            let save = save_cache_once(shared);
            shared.stop_accept.store(true, Ordering::SeqCst);
            match save {
                Ok(()) => Response::ok(format!(
                    "shutdown: drained ({computed} derivation(s) computed); cache persisted\n"
                )),
                Err(e) => Response::error(codes::ICE, format!("cache write-back failed: {e}")),
            }
        }
        other => Response::error(
            codes::UNKNOWN_KIND,
            format!("unknown control kind `{other}`"),
        ),
    }
}

/// The `stats` payload: deterministic counters under plain keys,
/// scheduling-dependent ones under `_nondet` keys (the same convention
/// the BENCH documents use), plus the service histograms.
fn stats_doc(shared: &Shared, st: &State) -> Json {
    let c = &st.counters;
    let cache_entries = shared.cache.lock().map(|c| c.len() as u64).unwrap_or(0);
    Json::obj([
        ("schema", Json::str(STATS_SCHEMA)),
        ("workers", Json::U64(shared.opts.workers as u64)),
        (
            "queue_capacity",
            Json::U64(shared.opts.queue_capacity as u64),
        ),
        ("cache_entries", Json::U64(cache_entries)),
        (
            "counters",
            Json::obj([
                ("work_requests", Json::U64(c.work_requests)),
                ("dedupe_hits", Json::U64(c.dedupe_hits)),
                ("memo_hits_nondet", Json::U64(c.memo_hits)),
                ("coalesced_nondet", Json::U64(c.coalesced)),
                ("shed", Json::U64(c.shed)),
                ("rejected_draining", Json::U64(c.rejected_draining)),
                ("computed", Json::U64(c.computed)),
                ("responses_ok", Json::U64(c.responses_ok)),
                ("responses_diag", Json::U64(c.responses_diag)),
                ("ice_responses", Json::U64(c.ice_responses)),
                ("protocol_errors", Json::U64(c.protocol_errors)),
                ("control_requests_nondet", Json::U64(c.control_requests)),
                ("worker_restarts", Json::U64(c.worker_restarts)),
                ("quarantined", Json::U64(c.quarantined)),
                ("stale_served", Json::U64(c.stale_served)),
                ("deadline_exceeded", Json::U64(c.deadline_exceeded)),
                (
                    "wal_replayed",
                    Json::U64(shared.wal_replayed.load(Ordering::SeqCst)),
                ),
                (
                    "wal_appends_nondet",
                    Json::U64(shared.wal_appends.load(Ordering::SeqCst)),
                ),
            ]),
        ),
        ("queue_len_nondet", Json::U64(st.queue.len() as u64)),
        ("inflight_nondet", Json::U64(st.inflight.len() as u64)),
        ("histograms", st.hists.to_json_value()),
    ])
}

/// The deterministic deadline check: a work response whose logical
/// cost exceeds the request's budget is replaced by a code-9 error.
/// Responses without a cost (diagnostics, protocol errors) never
/// deadline-exceed.
fn deadline_verdict(req: &Request, r: &Response) -> Option<Response> {
    let (Some(deadline), Some(cost)) = (req.deadline_millis, r.cost) else {
        return None;
    };
    let budget = deadline.saturating_mul(DEADLINE_NODES_PER_MILLI);
    if cost <= budget {
        return None;
    }
    Some(Response::error(
        codes::DEADLINE_EXCEEDED,
        format!(
            "deadline-exceeded: cost {cost} derivation node(s) over a budget of {deadline} ms \
             × {DEADLINE_NODES_PER_MILLI} node(s)/ms"
        ),
    ))
}

fn dispatch_work(shared: &Shared, req: &Request) -> Response {
    let key = format!("{}:{}", req.kind, checksum_hex(&req.body));
    let (tx, rx) = channel();
    let parked = {
        let mut st = lock_state(shared);
        st.counters.work_requests += 1;
        if let Some(r) = st.memo.get(&key) {
            let r = Arc::clone(r);
            st.counters.dedupe_hits += 1;
            st.counters.memo_hits += 1;
            if let Some(exceeded) = deadline_verdict(req, &r) {
                st.counters.deadline_exceeded += 1;
                return exceeded;
            }
            finish_work(&mut st, &r);
            return (*r).clone();
        }
        if st.inflight.contains(&key) {
            st.counters.dedupe_hits += 1;
            st.counters.coalesced += 1;
            st.waiters.entry(key.clone()).or_default().push(tx);
            true
        } else if st.draining {
            st.counters.rejected_draining += 1;
            return Response::error(codes::SHUTTING_DOWN, "daemon is draining for shutdown");
        } else if st.queue.len() >= shared.opts.queue_capacity {
            // Stale-while-revalidate: when the client opted in with
            // `allow_stale`, a result from the previous memo generation
            // beats shedding — serve it marked `stale: true` instead of
            // turning the client away.
            if let Some(r) = st.stale_memo.get(&key).filter(|_| req.allow_stale) {
                let mut stale = (**r).clone();
                stale.stale = true;
                st.counters.stale_served += 1;
                if let Some(exceeded) = deadline_verdict(req, &stale) {
                    st.counters.deadline_exceeded += 1;
                    return exceeded;
                }
                finish_work(&mut st, &stale);
                return stale;
            }
            st.counters.shed += 1;
            return Response::overloaded(shared.opts.retry_after_millis);
        } else {
            st.inflight.insert(key.clone());
            st.waiters.insert(key.clone(), vec![tx]);
            st.queue.push_back(Job {
                key: key.clone(),
                kind: req.kind.clone(),
                body: Arc::new(req.body.clone()),
            });
            let depth = st.queue.len() as u64;
            st.hists.record("serve.queue_depth_nondet", depth);
            shared.work_cv.notify_one();
            true
        }
    };
    debug_assert!(parked);
    match rx.recv() {
        Ok(r) => {
            let mut st = lock_state(shared);
            if let Some(exceeded) = deadline_verdict(req, &r) {
                st.counters.deadline_exceeded += 1;
                return exceeded;
            }
            finish_work(&mut st, &r);
            (*r).clone()
        }
        Err(_) => Response::error(codes::ICE, "internal error: worker disappeared"),
    }
}

/// Books a completed work response into the counters and the
/// (deterministic) response-size histogram.
fn finish_work(st: &mut State, r: &Response) {
    match r.code {
        codes::OK => st.counters.responses_ok += 1,
        codes::DIAGNOSTIC => st.counters.responses_diag += 1,
        codes::ICE => st.counters.ice_responses += 1,
        _ => {}
    }
    st.hists
        .record("serve.response_bytes", r.output.len() as u64);
}
