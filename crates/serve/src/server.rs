//! The daemon: a unix-socket accept loop over a bounded work queue, a
//! fixed worker pool, a response memo keyed by content fingerprint, and
//! the in-memory fingerprint cache seeded from (and written back to)
//! the on-disk [`DiskCache`].
//!
//! ## Dedupe
//!
//! Work requests are keyed by `kind:fnv64(body)`. A key that already
//! has a completed response replays it from the memo; a key that is
//! in flight parks the new client on the first derivation's waiter
//! list. Both count as `dedupe_hits` — for a fixed request multiset the
//! total is deterministic (`requests − distinct keys`) even though the
//! memo/coalesce split depends on scheduling.
//!
//! ## Load shedding
//!
//! The queue is bounded. A work request that finds the queue full is
//! answered immediately with an `overloaded` response carrying a
//! retry-after hint — counted, never enqueued, never a hang.
//!
//! ## Shutdown
//!
//! A `shutdown` request (or SIGTERM) stops admission, drains the queue
//! and all in-flight work, writes the fingerprint cache back to disk,
//! and only then replies / returns.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use fearless_core::CheckerOptions;
use fearless_incr::disk::checksum_hex;
use fearless_incr::DiskCache;
use fearless_obs::HistogramSet;
use fearless_trace::{Json, MemorySink, TraceSink, Tracer};

use crate::protocol::{self, codes, Frame, Request, Response};

/// Schema tag of the `stats` response payload.
pub const STATS_SCHEMA: &str = "fearless-serve-stats/1";

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Unix socket path to listen on.
    pub socket: PathBuf,
    /// Worker threads executing queued work.
    pub workers: usize,
    /// Bound on the work queue; a full queue sheds.
    pub queue_capacity: usize,
    /// Persistent fingerprint-cache directory (`None`: in-memory only).
    pub cache_dir: Option<PathBuf>,
    /// Backoff hint stamped on `overloaded` responses.
    pub retry_after_millis: u64,
}

impl ServeOptions {
    /// Defaults for a given socket path: 2 workers, queue of 16,
    /// ephemeral cache, 25 ms retry hint.
    pub fn new(socket: impl Into<PathBuf>) -> ServeOptions {
        ServeOptions {
            socket: socket.into(),
            workers: 2,
            queue_capacity: 16,
            cache_dir: None,
            retry_after_millis: 25,
        }
    }
}

/// Service counters, all monotonic within a `reset` window.
#[derive(Debug, Clone, Copy, Default)]
pub struct Counters {
    /// Work requests admitted to dispatch (check/lint/flow/profile).
    pub work_requests: u64,
    /// Control requests (ping/stats/pause/resume/reset/shutdown).
    pub control_requests: u64,
    /// Work requests answered from the memo or coalesced onto an
    /// in-flight derivation (`memo_hits + coalesced`).
    pub dedupe_hits: u64,
    /// Dedupe hits replayed from the completed-response memo.
    pub memo_hits: u64,
    /// Dedupe hits parked on an in-flight derivation.
    pub coalesced: u64,
    /// Work requests answered `overloaded` (queue full).
    pub shed: u64,
    /// Work requests answered after the drain began.
    pub rejected_draining: u64,
    /// Derivations actually executed (distinct keys computed).
    pub computed: u64,
    /// Work responses with code 0.
    pub responses_ok: u64,
    /// Work responses with code 1 (diagnostics).
    pub responses_diag: u64,
    /// Responses with code 70 (a panic caught at the ICE boundary).
    pub ice_responses: u64,
    /// Structured protocol-error responses (codes 2–6).
    pub protocol_errors: u64,
}

struct Job {
    key: String,
    kind: String,
    body: Arc<String>,
}

struct State {
    queue: VecDeque<Job>,
    inflight: BTreeSet<String>,
    waiters: BTreeMap<String, Vec<Sender<Arc<Response>>>>,
    memo: BTreeMap<String, Arc<Response>>,
    paused: bool,
    draining: bool,
    counters: Counters,
    hists: HistogramSet,
}

struct Shared {
    opts: ServeOptions,
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
    cache: Mutex<DiskCache>,
    stop_accept: AtomicBool,
    saved: AtomicBool,
}

/// Set by the SIGTERM handler; the accept loop treats it exactly like a
/// `shutdown` request.
static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

type SigHandler = extern "C" fn(i32);

extern "C" {
    fn signal(signum: i32, handler: SigHandler) -> usize;
}

extern "C" fn on_sigterm(_signum: i32) {
    TERM_REQUESTED.store(true, Ordering::SeqCst);
}

const SIGTERM: i32 = 15;

/// Installs the SIGTERM → graceful-drain handler (async-signal-safe:
/// the handler only stores to an atomic the accept loop polls).
pub fn install_sigterm() {
    // SAFETY: `signal(2)` with a handler that performs a single atomic
    // store, which is async-signal-safe.
    unsafe {
        signal(SIGTERM, on_sigterm);
    }
}

/// A running daemon bound to its socket.
pub struct Server {
    shared: Arc<Shared>,
    listener: UnixListener,
}

/// An in-process daemon running on a background thread (tests,
/// `serve --once`, and `serve-bench --spawn`).
pub struct SpawnedServer {
    /// The daemon's shared state (for [`Server::run`]'s return value).
    handle: std::thread::JoinHandle<Result<String, String>>,
    shared: Arc<Shared>,
}

impl SpawnedServer {
    /// Requests a drain (as SIGTERM would) and joins the daemon,
    /// returning its summary.
    ///
    /// # Errors
    ///
    /// Propagates the daemon's error, or reports a panicked thread.
    pub fn shutdown_and_join(self) -> Result<String, String> {
        self.shared.stop_accept.store(true, Ordering::SeqCst);
        self.handle
            .join()
            .map_err(|_| "serve thread panicked".to_string())?
    }
}

impl Server {
    /// Binds the socket (replacing a stale socket file) and loads the
    /// fingerprint cache.
    ///
    /// # Errors
    ///
    /// Reports a socket that cannot be bound.
    pub fn bind(opts: ServeOptions) -> Result<Server, String> {
        let _ = std::fs::remove_file(&opts.socket);
        let listener = UnixListener::bind(&opts.socket)
            .map_err(|e| format!("cannot bind `{}`: {e}", opts.socket.display()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot set nonblocking: {e}"))?;
        let cache = match &opts.cache_dir {
            Some(dir) => DiskCache::load(dir),
            None => DiskCache::ephemeral(),
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                inflight: BTreeSet::new(),
                waiters: BTreeMap::new(),
                memo: BTreeMap::new(),
                paused: false,
                draining: false,
                counters: Counters::default(),
                hists: HistogramSet::new(),
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            cache: Mutex::new(cache),
            stop_accept: AtomicBool::new(false),
            saved: AtomicBool::new(false),
            opts,
        });
        Ok(Server { shared, listener })
    }

    /// Binds and runs the daemon on a background thread, returning once
    /// the socket accepts connections.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn spawn(opts: ServeOptions) -> Result<SpawnedServer, String> {
        let server = Server::bind(opts)?;
        let shared = Arc::clone(&server.shared);
        let handle = std::thread::spawn(move || server.run());
        // The listener exists before the thread starts; a connect can
        // only race the accept loop, which is fine (it queues).
        Ok(SpawnedServer { handle, shared })
    }

    /// Runs the accept loop until a `shutdown` request or SIGTERM, then
    /// drains in-flight work, writes the cache back, and returns a
    /// summary line.
    ///
    /// # Errors
    ///
    /// Propagates cache write-back failures.
    pub fn run(self) -> Result<String, String> {
        let workers: Vec<_> = (0..self.shared.opts.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&self.shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        loop {
            if TERM_REQUESTED.load(Ordering::SeqCst)
                || self.shared.stop_accept.load(Ordering::SeqCst)
            {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self.shared);
                    std::thread::spawn(move || handle_connection(&shared, stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("accept: {e}")),
            }
        }
        // Drain: stop admitting, finish the queue and in-flight work.
        drain(&self.shared);
        for w in workers {
            let _ = w.join();
        }
        save_cache_once(&self.shared)?;
        let st = lock_state(&self.shared);
        let c = st.counters;
        let cache_entries = self.shared.cache.lock().map(|c| c.len()).unwrap_or(0);
        drop(st);
        let _ = std::fs::remove_file(&self.shared.opts.socket);
        Ok(format!(
            "serve: drained and stopped; {} work request(s), {} dedupe hit(s), {} shed, {} \
             derivation(s) computed, {} cache entr(ies) persisted\n",
            c.work_requests, c.dedupe_hits, c.shed, c.computed, cache_entries
        ))
    }
}

fn lock_state(shared: &Shared) -> MutexGuard<'_, State> {
    shared.state.lock().unwrap_or_else(|e| e.into_inner())
}

/// Marks the drain, wakes everyone, and blocks until the queue and all
/// in-flight work are empty.
fn drain(shared: &Shared) {
    let mut st = lock_state(shared);
    st.draining = true;
    st.paused = false;
    shared.work_cv.notify_all();
    while !(st.queue.is_empty() && st.inflight.is_empty()) {
        st = shared.done_cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
}

/// Writes the fingerprint cache back exactly once (the `shutdown`
/// request and the accept loop's exit path both call this).
fn save_cache_once(shared: &Shared) -> Result<(), String> {
    if shared.saved.swap(true, Ordering::SeqCst) {
        return Ok(());
    }
    shared
        .cache
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .save()
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut st = lock_state(shared);
            loop {
                if st.draining && st.queue.is_empty() {
                    return;
                }
                if !st.paused || st.draining {
                    if let Some(job) = st.queue.pop_front() {
                        break job;
                    }
                }
                st = shared.work_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        };
        let response = Arc::new(run_job(&job, shared));
        let waiters = {
            let mut st = lock_state(shared);
            st.memo.insert(job.key.clone(), Arc::clone(&response));
            st.counters.computed += 1;
            st.inflight.remove(&job.key);
            let waiters = st.waiters.remove(&job.key).unwrap_or_default();
            shared.done_cv.notify_all();
            waiters
        };
        for tx in waiters {
            let _ = tx.send(Arc::clone(&response));
        }
    }
}

/// Executes one work request behind the ICE boundary: a panic becomes a
/// structured code-70 response, never a dead worker.
fn run_job(job: &Job, shared: &Shared) -> Response {
    let kind = job.kind.clone();
    let body = Arc::clone(&job.body);
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        compute(&kind, &body, shared)
    })) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic".to_string());
            Response::error(codes::ICE, format!("internal error: {msg}"))
        }
    }
}

/// The actual pipelines. Every output here is deterministic in the
/// request body alone — the determinism contract `docs/SERVE.md` pins —
/// because the underlying drivers are (cache warmth never shows in
/// `check` output, and `profile` runs without wall clock).
fn compute(kind: &str, src: &str, shared: &Shared) -> Response {
    let opts = CheckerOptions::default();
    match kind {
        "check" => {
            let program = match fearless_syntax::parse_program(src) {
                Ok(p) => p,
                Err(e) => return Response::error(codes::DIAGNOSTIC, e.render(src)),
            };
            let units = vec![(String::new(), program)];
            let mut cache = shared.cache.lock().unwrap_or_else(|e| e.into_inner());
            let run =
                fearless_incr::check_units(&units, &opts, 1, Some(&mut cache), &mut Tracer::off());
            drop(cache);
            match run.units[0].first_error() {
                Some(e) => Response::error(codes::DIAGNOSTIC, e.render(src)),
                None => Response::ok(format!(
                    "ok: {} function(s), {} derivation nodes, {} virtual transformations\n",
                    run.units[0].functions.len(),
                    run.units[0].total_nodes(),
                    run.units[0].total_vir_steps()
                )),
            }
        }
        "lint" => {
            let checked = match fearless_core::check_source(src, &opts) {
                Ok(c) => c,
                Err(e) => return Response::error(codes::DIAGNOSTIC, e.render(src)),
            };
            match fearless_analyze::analyze_program(&checked) {
                Ok(report) => Response::ok(report.to_json(src)),
                Err(msg) => Response::error(codes::DIAGNOSTIC, msg),
            }
        }
        "flow" => {
            let checked = match fearless_core::check_source(src, &opts) {
                Ok(c) => c,
                Err(e) => return Response::error(codes::DIAGNOSTIC, e.render(src)),
            };
            match fearless_flow::analyze_checked(&checked) {
                Ok(flow) => {
                    let mut out = flow.to_json();
                    out.push('\n');
                    Response::ok(out)
                }
                Err(e) => Response::error(codes::DIAGNOSTIC, e.to_string()),
            }
        }
        "profile" => {
            let mut sink = MemorySink::new();
            sink.span_enter("parse", "program");
            let parsed = fearless_syntax::parse_program(src);
            sink.span_exit();
            let program = match parsed {
                Ok(p) => p,
                Err(e) => return Response::error(codes::DIAGNOSTIC, e.render(src)),
            };
            if let Err(e) =
                fearless_core::check_program_traced(&program, &opts, &mut Tracer::new(&mut sink))
            {
                return Response::error(codes::DIAGNOSTIC, e.render(src));
            }
            // Logical counters only: no wall clock, so identical bodies
            // yield byte-identical profiles.
            Response::ok(sink.to_json_value_opts(false).render())
        }
        other => Response::error(codes::UNKNOWN_KIND, format!("unknown work kind `{other}`")),
    }
}

fn handle_connection(shared: &Shared, mut stream: UnixStream) {
    loop {
        match protocol::read_frame(&mut stream, protocol::MAX_FRAME) {
            Ok(Frame::Eof) => return,
            Ok(Frame::Oversized(len)) => {
                // The stream is desynchronized: answer and hang up.
                note_protocol_error(shared);
                let r = Response::error(
                    codes::OVERSIZED,
                    format!(
                        "frame of {len} bytes exceeds the {}-byte limit",
                        protocol::MAX_FRAME
                    ),
                );
                let _ = protocol::write_frame(&mut stream, r.to_json().as_bytes());
                return;
            }
            Ok(Frame::Truncated) => {
                // The peer may have shut down only its write half; the
                // structured response still goes out before we close.
                note_protocol_error(shared);
                let r = Response::error(codes::TRUNCATED, "stream ended mid-frame");
                let _ = protocol::write_frame(&mut stream, r.to_json().as_bytes());
                return;
            }
            Ok(Frame::Body(bytes)) => {
                let response = match protocol::parse_request(&bytes) {
                    Ok(req) => respond(shared, &req),
                    Err((code, msg)) => {
                        note_protocol_error(shared);
                        Response::error(code, msg)
                    }
                };
                if protocol::write_frame(&mut stream, response.to_json().as_bytes()).is_err() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn note_protocol_error(shared: &Shared) {
    lock_state(shared).counters.protocol_errors += 1;
}

fn respond(shared: &Shared, req: &Request) -> Response {
    if protocol::WORK_KINDS.contains(&req.kind.as_str()) {
        return dispatch_work(shared, req);
    }
    let mut st = lock_state(shared);
    st.counters.control_requests += 1;
    match req.kind.as_str() {
        "ping" => Response::ok("pong"),
        "pause" => {
            st.paused = true;
            Response::ok("paused")
        }
        "resume" => {
            st.paused = false;
            shared.work_cv.notify_all();
            Response::ok("resumed")
        }
        "reset" => {
            // Bench hygiene: clear the response memo, counters, and
            // histograms so two identically-seeded load runs observe
            // identical deterministic counters. The fingerprint cache
            // deliberately stays hot — it never changes response bytes.
            st.memo.clear();
            st.counters = Counters::default();
            st.hists = HistogramSet::new();
            Response::ok("reset")
        }
        "stats" => {
            let doc = stats_doc(shared, &st);
            Response::ok(doc.render())
        }
        "shutdown" => {
            st.draining = true;
            st.paused = false;
            shared.work_cv.notify_all();
            while !(st.queue.is_empty() && st.inflight.is_empty()) {
                st = shared.done_cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
            let computed = st.counters.computed;
            drop(st);
            let save = save_cache_once(shared);
            shared.stop_accept.store(true, Ordering::SeqCst);
            match save {
                Ok(()) => Response::ok(format!(
                    "shutdown: drained ({computed} derivation(s) computed); cache persisted\n"
                )),
                Err(e) => Response::error(codes::ICE, format!("cache write-back failed: {e}")),
            }
        }
        other => Response::error(
            codes::UNKNOWN_KIND,
            format!("unknown control kind `{other}`"),
        ),
    }
}

/// The `stats` payload: deterministic counters under plain keys,
/// scheduling-dependent ones under `_nondet` keys (the same convention
/// the BENCH documents use), plus the service histograms.
fn stats_doc(shared: &Shared, st: &State) -> Json {
    let c = &st.counters;
    let cache_entries = shared.cache.lock().map(|c| c.len() as u64).unwrap_or(0);
    Json::obj([
        ("schema", Json::str(STATS_SCHEMA)),
        ("workers", Json::U64(shared.opts.workers as u64)),
        (
            "queue_capacity",
            Json::U64(shared.opts.queue_capacity as u64),
        ),
        ("cache_entries", Json::U64(cache_entries)),
        (
            "counters",
            Json::obj([
                ("work_requests", Json::U64(c.work_requests)),
                ("dedupe_hits", Json::U64(c.dedupe_hits)),
                ("memo_hits_nondet", Json::U64(c.memo_hits)),
                ("coalesced_nondet", Json::U64(c.coalesced)),
                ("shed", Json::U64(c.shed)),
                ("rejected_draining", Json::U64(c.rejected_draining)),
                ("computed", Json::U64(c.computed)),
                ("responses_ok", Json::U64(c.responses_ok)),
                ("responses_diag", Json::U64(c.responses_diag)),
                ("ice_responses", Json::U64(c.ice_responses)),
                ("protocol_errors", Json::U64(c.protocol_errors)),
                ("control_requests_nondet", Json::U64(c.control_requests)),
            ]),
        ),
        ("histograms", st.hists.to_json_value()),
    ])
}

fn dispatch_work(shared: &Shared, req: &Request) -> Response {
    let key = format!("{}:{}", req.kind, checksum_hex(&req.body));
    let (tx, rx) = channel();
    let parked = {
        let mut st = lock_state(shared);
        st.counters.work_requests += 1;
        if let Some(r) = st.memo.get(&key) {
            let r = Arc::clone(r);
            st.counters.dedupe_hits += 1;
            st.counters.memo_hits += 1;
            finish_work(&mut st, &r);
            return (*r).clone();
        }
        if st.inflight.contains(&key) {
            st.counters.dedupe_hits += 1;
            st.counters.coalesced += 1;
            st.waiters.entry(key.clone()).or_default().push(tx);
            true
        } else if st.draining {
            st.counters.rejected_draining += 1;
            return Response::error(codes::SHUTTING_DOWN, "daemon is draining for shutdown");
        } else if st.queue.len() >= shared.opts.queue_capacity {
            st.counters.shed += 1;
            return Response::overloaded(shared.opts.retry_after_millis);
        } else {
            st.inflight.insert(key.clone());
            st.waiters.insert(key.clone(), vec![tx]);
            st.queue.push_back(Job {
                key: key.clone(),
                kind: req.kind.clone(),
                body: Arc::new(req.body.clone()),
            });
            let depth = st.queue.len() as u64;
            st.hists.record("serve.queue_depth_nondet", depth);
            shared.work_cv.notify_one();
            true
        }
    };
    debug_assert!(parked);
    match rx.recv() {
        Ok(r) => {
            let mut st = lock_state(shared);
            finish_work(&mut st, &r);
            (*r).clone()
        }
        Err(_) => Response::error(codes::ICE, "internal error: worker disappeared"),
    }
}

/// Books a completed work response into the counters and the
/// (deterministic) response-size histogram.
fn finish_work(st: &mut State, r: &Response) {
    match r.code {
        codes::OK => st.counters.responses_ok += 1,
        codes::DIAGNOSTIC => st.counters.responses_diag += 1,
        codes::ICE => st.counters.ice_responses += 1,
        _ => {}
    }
    st.hists
        .record("serve.response_bytes", r.output.len() as u64);
}
