//! The `fearlessc report --serve` view: a top-style per-client table
//! over a serve-bench journal, mirroring the runtime lane report's
//! layout (busiest lane first, fixed columns, a totals row).

use std::collections::BTreeMap;

use fearless_trace::Json;

use crate::protocol::codes;

/// One client's aggregated lane.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct ClientLane {
    requests: u64,
    ok: u64,
    diag: u64,
    bytes: u64,
    checks: u64,
    lints: u64,
    flows: u64,
    profiles: u64,
}

/// Projection from a lane to one table cell.
type Column = (&'static str, fn(&ClientLane) -> u64);

/// Column layout shared by the header, the rows, and the totals row.
const COLUMNS: &[Column] = &[
    ("reqs", |l| l.requests),
    ("ok", |l| l.ok),
    ("diag", |l| l.diag),
    ("bytes", |l| l.bytes),
    ("check", |l| l.checks),
    ("lint", |l| l.lints),
    ("flow", |l| l.flows),
    ("profile", |l| l.profiles),
];

fn get<'a>(json: &'a Json, key: &str) -> Option<&'a Json> {
    let Json::Obj(fields) = json else {
        return None;
    };
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_u64(json: &Json, key: &str) -> Option<u64> {
    match get(json, key)? {
        Json::U64(v) => Some(*v),
        _ => None,
    }
}

fn get_str<'a>(json: &'a Json, key: &str) -> Option<&'a str> {
    match get(json, key)? {
        Json::Str(s) => Some(s),
        _ => None,
    }
}

fn entry_field(entry: &Json, name: &str) -> u64 {
    get(entry, "fields")
        .and_then(|f| get_u64(f, name))
        .unwrap_or(0)
}

/// Renders the per-client serve table from a rendered serve-bench
/// journal document (schema `fearless-obs/1`, source `serve-bench`).
///
/// # Errors
///
/// Rejects text that is not a journal document or whose source is not
/// `serve-bench`.
pub fn render_serve_report(journal_text: &str) -> Result<String, String> {
    let doc =
        fearless_incr::parse_json(journal_text).ok_or_else(|| "not a JSON document".to_string())?;
    let schema = get_str(&doc, "schema").unwrap_or("");
    if schema != fearless_obs::SCHEMA {
        return Err(format!(
            "expected a `{}` journal, got schema `{schema}`",
            fearless_obs::SCHEMA
        ));
    }
    let source = get_str(&doc, "source").unwrap_or("");
    if source != "serve-bench" {
        return Err(format!(
            "`report --serve` wants a serve-bench journal, got source `{source}`"
        ));
    }
    let Some(Json::Arr(entries)) = get(&doc, "entries") else {
        return Err("journal has no entries array".to_string());
    };

    let mut lanes: BTreeMap<String, ClientLane> = BTreeMap::new();
    let mut drill: Option<(u64, u64)> = None;
    let mut counters: Vec<(String, u64)> = Vec::new();
    let mut guard: Vec<(String, u64)> = Vec::new();
    for entry in entries {
        let name = get_str(entry, "name").unwrap_or("");
        let event = get_str(entry, "event").unwrap_or("");
        if name == "drill" && event == "shed" {
            drill = Some((
                entry_field(entry, "requests"),
                entry_field(entry, "overloaded"),
            ));
            continue;
        }
        if name == "guard" && event == "counters" {
            if let Some(Json::Obj(fields)) = get(entry, "fields") {
                for (k, v) in fields {
                    if let Json::U64(n) = v {
                        guard.push((k.clone(), *n));
                    }
                }
            }
            continue;
        }
        if name == "stats" && event == "counters" {
            if let Some(Json::Obj(fields)) = get(entry, "fields") {
                for (k, v) in fields {
                    if let Json::U64(n) = v {
                        counters.push((k.clone(), *n));
                    }
                }
            }
            continue;
        }
        if !name.starts_with("client") {
            continue;
        }
        let lane = lanes.entry(name.to_string()).or_default();
        lane.requests += 1;
        lane.bytes += entry_field(entry, "bytes");
        match entry_field(entry, "code") {
            codes::OK => lane.ok += 1,
            codes::DIAGNOSTIC => lane.diag += 1,
            _ => {}
        }
        match event {
            "check" => lane.checks += 1,
            "lint" => lane.lints += 1,
            "flow" => lane.flows += 1,
            "profile" => lane.profiles += 1,
            _ => {}
        }
    }

    // Busiest client first (by bytes served, ties by name) — the same
    // `top` reading order as the runtime lane report.
    let mut rows: Vec<(&String, &ClientLane)> = lanes.iter().collect();
    rows.sort_by(|(na, a), (nb, b)| b.bytes.cmp(&a.bytes).then(na.cmp(nb)));

    let total = lanes.values().fold(ClientLane::default(), |mut t, l| {
        t.requests += l.requests;
        t.ok += l.ok;
        t.diag += l.diag;
        t.bytes += l.bytes;
        t.checks += l.checks;
        t.lints += l.lints;
        t.flows += l.flows;
        t.profiles += l.profiles;
        t
    });

    let mut out = String::new();
    out.push_str(&format!(
        "serve report: {} client(s), {} request(s)\n",
        lanes.len(),
        total.requests
    ));
    out.push_str(&format!("{:>8}", "client"));
    for (label, _) in COLUMNS {
        out.push_str(&format!(" {label:>8}"));
    }
    out.push('\n');
    for (name, lane) in rows {
        let id = name.strip_prefix("client").unwrap_or(name);
        out.push_str(&format!("{id:>8}"));
        for (_, project) in COLUMNS {
            out.push_str(&format!(" {:>8}", project(lane)));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:>8}", "total"));
    for (_, project) in COLUMNS {
        out.push_str(&format!(" {:>8}", project(&total)));
    }
    out.push('\n');

    if let Some((requests, overloaded)) = drill {
        out.push_str(&format!(
            "shed drill: {requests} request(s) against the paused queue, {overloaded} overloaded\n"
        ));
    }
    if !counters.is_empty() {
        out.push_str("daemon counters:");
        for (name, value) in &counters {
            out.push_str(&format!(" {name}={value}"));
        }
        out.push('\n');
    }
    if !guard.is_empty() {
        out.push_str("guard counters:");
        for (name, value) in &guard {
            out.push_str(&format!(" {name}={value}"));
        }
        out.push('\n');
    }

    // Queue-depth and response-size distributions, when present.
    if let Some(hists) = get(&doc, "histograms") {
        if let Some(set) = fearless_obs::HistogramSet::from_json_value(hists) {
            for (name, hist) in set.iter() {
                if hist.count() == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "{name}: count {} max {} p50>={} p99>={}\n",
                    hist.count(),
                    hist.max(),
                    hist.quantile_lo(50),
                    hist.quantile_lo(99),
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fearless_obs::{Journal, JournalEntry};

    fn sample_journal() -> Journal {
        let mut journal = Journal {
            source: "serve-bench".to_string(),
            ..Journal::default()
        };
        for (clock, client, event, bytes, code) in [
            (0u64, 0usize, "check", 40u64, codes::OK),
            (1, 0, "lint", 120, codes::OK),
            (2, 1, "flow", 80, codes::OK),
            (3, 1, "check", 30, codes::DIAGNOSTIC),
        ] {
            journal.entries.push(JournalEntry {
                clock,
                phase: "serve".to_string(),
                name: format!("client{client}"),
                event: event.to_string(),
                fields: vec![
                    ("body".to_string(), 0),
                    ("bytes".to_string(), bytes),
                    ("code".to_string(), code),
                    ("fp".to_string(), 7),
                ],
            });
        }
        journal.entries.push(JournalEntry {
            clock: 4,
            phase: "serve".to_string(),
            name: "drill".to_string(),
            event: "shed".to_string(),
            fields: vec![
                ("completed".to_string(), 4),
                ("overloaded".to_string(), 2),
                ("requests".to_string(), 6),
            ],
        });
        journal.entries.push(JournalEntry {
            clock: 5,
            phase: "serve".to_string(),
            name: "guard".to_string(),
            event: "counters".to_string(),
            fields: vec![
                ("quarantined".to_string(), 1),
                ("worker_restarts".to_string(), 2),
            ],
        });
        journal.histograms.record("serve.queue_depth_nondet", 2);
        journal
    }

    #[test]
    fn table_aggregates_per_client_and_sorts_by_bytes() {
        let table = render_serve_report(&sample_journal().render()).unwrap();
        assert!(
            table.contains("serve report: 2 client(s), 4 request(s)"),
            "{table}"
        );
        // Client 0 served 160 bytes vs client 1's 110 — it leads.
        let r0 = table
            .lines()
            .position(|l| l.starts_with("       0"))
            .unwrap();
        let r1 = table
            .lines()
            .position(|l| l.starts_with("       1"))
            .unwrap();
        assert!(r0 < r1, "busiest client first:\n{table}");
        assert!(table.contains("shed drill: 6 request(s)"), "{table}");
        assert!(
            table.contains("guard counters: quarantined=1 worker_restarts=2"),
            "{table}"
        );
        assert!(
            table.contains("serve.queue_depth_nondet: count 1 max 2"),
            "{table}"
        );
        // Determinism: same journal, same bytes.
        assert_eq!(
            table,
            render_serve_report(&sample_journal().render()).unwrap()
        );
    }

    #[test]
    fn rejects_non_serve_documents() {
        assert!(render_serve_report("{}").is_err());
        let wrong = Journal {
            source: "check".to_string(),
            ..Journal::default()
        };
        let err = render_serve_report(&wrong.render()).unwrap_err();
        assert!(err.contains("serve-bench"), "{err}");
    }
}
