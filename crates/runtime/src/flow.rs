//! Step-safety classifications consumed by the domination sanitizer.
//!
//! The sanitizer's full-heap walk after *every* step is what makes
//! `--sanitize-domination` cost ~19x (experiment E11). Most instructions
//! cannot change any heap edge at all, and most of the rest can only
//! dirty the neighborhood of the objects they touch. A static analysis
//! (the `fearless-flow` crate) classifies every `(function, pc)` ahead of
//! time; the machine consults the resulting [`FlowIndex`] to decide, per
//! step, whether to skip the walk, re-check only the affected `iso`
//! edges, or fall back to the full walk.
//!
//! The classification lives here — not in the analysis crate — so the
//! runtime stays dependency-free: the machine only needs the verdicts,
//! never the analysis that produced them.

/// How one instruction can affect the tempered-domination invariant.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub enum StepSafety {
    /// The instruction provably changes no heap edge (loads, stores,
    /// arithmetic, jumps, calls, sends — anything that never writes a
    /// field or allocates). The sanitizer walk is skipped entirely.
    Safe,
    /// The instruction may add or remove heap edges, but only at objects
    /// the machine can name while executing it (the written object, the
    /// old and new field values, a fresh allocation's initializers). Only
    /// `iso` edges whose dominated subgraph reaches one of those objects
    /// are re-checked (see `sanitize::check_domination_touched`).
    RegionLocal,
    /// No static claim (e.g. an `iso` field write, or an instruction the
    /// analysis could not resolve). The full walk runs, exactly as
    /// without a [`FlowIndex`].
    #[default]
    Unknown,
}

impl StepSafety {
    /// Stable lowercase name used in reports and JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            StepSafety::Safe => "safe",
            StepSafety::RegionLocal => "region-local",
            StepSafety::Unknown => "unknown",
        }
    }

    /// One-letter code used by the compact per-pc encoding (`S`/`R`/`U`).
    pub fn code(self) -> char {
        match self {
            StepSafety::Safe => 'S',
            StepSafety::RegionLocal => 'R',
            StepSafety::Unknown => 'U',
        }
    }

    /// Parses the [`StepSafety::code`] encoding back.
    pub fn from_code(c: char) -> Option<StepSafety> {
        match c {
            'S' => Some(StepSafety::Safe),
            'R' => Some(StepSafety::RegionLocal),
            'U' => Some(StepSafety::Unknown),
            _ => None,
        }
    }
}

/// Per-`(function, pc)` safety verdicts for one compiled program.
///
/// Out-of-range lookups answer [`StepSafety::Unknown`], so a stale or
/// partial index degrades to the full walk instead of unsoundly skipping
/// it.
#[derive(Clone, Debug, Default)]
pub struct FlowIndex {
    funcs: Vec<Vec<StepSafety>>,
}

impl FlowIndex {
    /// Builds an index from per-function verdict vectors, in compiled
    /// function order (parallel to `CompiledProgram::funcs`).
    pub fn new(funcs: Vec<Vec<StepSafety>>) -> Self {
        FlowIndex { funcs }
    }

    /// The verdict for `pc` of function `func`.
    pub fn safety(&self, func: usize, pc: usize) -> StepSafety {
        self.funcs
            .get(func)
            .and_then(|f| f.get(pc))
            .copied()
            .unwrap_or(StepSafety::Unknown)
    }

    /// Number of functions covered.
    pub fn fn_count(&self) -> usize {
        self.funcs.len()
    }

    /// Total `(safe, region_local, unknown)` verdicts across the index.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut safe = 0;
        let mut region_local = 0;
        let mut unknown = 0;
        for f in &self.funcs {
            for s in f {
                match s {
                    StepSafety::Safe => safe += 1,
                    StepSafety::RegionLocal => region_local += 1,
                    StepSafety::Unknown => unknown += 1,
                }
            }
        }
        (safe, region_local, unknown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_of_range_is_unknown() {
        let idx = FlowIndex::new(vec![vec![StepSafety::Safe]]);
        assert_eq!(idx.safety(0, 0), StepSafety::Safe);
        assert_eq!(idx.safety(0, 1), StepSafety::Unknown);
        assert_eq!(idx.safety(5, 0), StepSafety::Unknown);
    }

    #[test]
    fn codes_roundtrip() {
        for s in [
            StepSafety::Safe,
            StepSafety::RegionLocal,
            StepSafety::Unknown,
        ] {
            assert_eq!(StepSafety::from_code(s.code()), Some(s));
        }
        assert_eq!(StepSafety::from_code('x'), None);
    }

    #[test]
    fn counts_tally_every_verdict() {
        let idx = FlowIndex::new(vec![
            vec![StepSafety::Safe, StepSafety::RegionLocal],
            vec![StepSafety::Unknown, StepSafety::Safe],
        ]);
        assert_eq!(idx.counts(), (2, 1, 1));
        assert_eq!(idx.fn_count(), 2);
    }
}
