//! Run-time errors, including the reservation faults that well-typed
//! programs can never trigger (Theorem 6.1/6.2).

use std::error::Error;
use std::fmt;

use crate::sanitize::DominationViolation;
use crate::value::ObjId;

/// A run-time error raised by the abstract machine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RuntimeError {
    /// A thread touched a location outside its reservation — the "stuck"
    /// state of the small-step semantics (§3.2). Well-typed programs never
    /// raise this; our soundness tests rely on that.
    ReservationFault {
        /// The offending thread.
        thread: usize,
        /// The location accessed.
        loc: ObjId,
        /// What the thread was doing.
        action: &'static str,
    },
    /// Access to a freed or never-allocated location.
    InvalidLocation(ObjId),
    /// A `none` was unwrapped where a value was required (only reachable
    /// from unchecked programs).
    NoneUnwrap,
    /// Dynamic type confusion (only reachable from unchecked programs).
    TypeConfusion(String),
    /// All threads are blocked on send/recv.
    Deadlock,
    /// The step budget was exhausted.
    StepLimit(u64),
    /// The caller-provided step-fuel budget (`MachineConfig::fuel`) ran
    /// out. Distinct from [`RuntimeError::StepLimit`] so harnesses can
    /// tell "the harness bounded this run" from "the internal guard
    /// tripped".
    FuelExhausted(u64),
    /// The differential `if disconnected` oracle found the efficient
    /// check claiming "disconnected" where the naive reference semantics
    /// says "connected" — a soundness bug in the §5.2 algorithm (only
    /// reachable with `DisconnectStrategy::Differential`).
    DisconnectDisagreement {
        /// First root of the check.
        a: ObjId,
        /// Second root of the check.
        b: ObjId,
    },
    /// Division by zero.
    DivisionByZero,
    /// A function or struct referenced at run time is missing.
    Missing(String),
    /// The domination sanitizer found an `iso` edge whose subgraph is
    /// entered by a foreign heap edge (only reachable with
    /// `sanitize_domination` on; well-typed programs never raise this).
    DominationFault(Box<DominationViolation>),
    /// The flow-facts crosscheck oracle found a full sanitizer walk
    /// failing on a step the static classification let the machine skip
    /// or only partially check — the flow analysis is unsound for this
    /// program (only reachable with `Machine::set_flow_crosscheck`).
    FlowUnsound {
        /// The classification that passed (`"safe"` or `"region-local"`).
        safety: &'static str,
        /// The violation the shadowed full walk found.
        violation: Box<DominationViolation>,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::ReservationFault {
                thread,
                loc,
                action,
            } => write!(
                f,
                "reservation fault: thread {thread} attempted {action} on {loc} outside \
                 its reservation (the program is stuck)"
            ),
            RuntimeError::InvalidLocation(l) => write!(f, "invalid location {l}"),
            RuntimeError::NoneUnwrap => write!(f, "unwrapped `none`"),
            RuntimeError::TypeConfusion(msg) => write!(f, "dynamic type confusion: {msg}"),
            RuntimeError::Deadlock => write!(f, "deadlock: all threads blocked on send/recv"),
            RuntimeError::StepLimit(n) => write!(f, "step limit of {n} exhausted"),
            RuntimeError::FuelExhausted(n) => write!(f, "fuel budget of {n} step(s) exhausted"),
            RuntimeError::DisconnectDisagreement { a, b } => write!(
                f,
                "disconnect disagreement: efficient check claims `disconnected({a}, {b})` but \
                 the naive reference semantics says the graphs intersect"
            ),
            RuntimeError::DivisionByZero => write!(f, "division by zero"),
            RuntimeError::Missing(what) => write!(f, "missing definition: {what}"),
            RuntimeError::DominationFault(v) => write!(f, "domination fault: {v}"),
            RuntimeError::FlowUnsound { safety, violation } => write!(
                f,
                "flow classification unsound: step classified `{safety}` passed its check but \
                 the full walk found {violation}"
            ),
        }
    }
}

impl Error for RuntimeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_reservation_fault() {
        let e = RuntimeError::ReservationFault {
            thread: 1,
            loc: ObjId(5),
            action: "field read",
        };
        let s = e.to_string();
        assert!(s.contains("thread 1"));
        assert!(s.contains("ℓ5"));
        assert!(s.contains("stuck"));
    }
}
