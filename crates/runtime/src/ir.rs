//! A compact stack-machine IR for the surface language.
//!
//! The tree-walking semantics of Fig. 7 is compiled to a small instruction
//! set so that threads can be suspended at any step — which is exactly
//! what the blocking `send`/`recv` rendezvous of §7 requires. Every
//! expression compiles to code that leaves exactly one value on the
//! operand stack.

use std::collections::HashMap;

use fearless_syntax::{BinOp, Symbol, Type, UnOp};

use crate::heap::TypeTable;

/// One instruction of the abstract machine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Inst {
    /// Push `unit`.
    PushUnit,
    /// Push an integer literal.
    PushInt(i64),
    /// Push a boolean literal.
    PushBool(bool),
    /// Push `none`.
    PushNone,
    /// Push the `self` placeholder (inside `new` initializers).
    PushSelf,
    /// Push the value of a local slot.
    Load(u16),
    /// Pop into a local slot.
    Store(u16),
    /// Discard the top of stack.
    Pop,
    /// Pop an object reference; push the value of field `n`.
    ReadField(u16),
    /// Pop a value, pop an object reference; write field `n`; push unit.
    WriteField(u16),
    /// Pop an object reference; push the old value of (maybe-typed, iso)
    /// field `n` and store `none` in it.
    TakeField(u16),
    /// Pop `v`; push `some(v)`.
    MakeSome,
    /// Pop a maybe; push whether it is `none`.
    IsNone,
    /// Pop a maybe; push whether it is `some`.
    IsSome,
    /// Pop `argc` field initializers; allocate a new object; push its
    /// location.
    New {
        /// Struct id in the [`TypeTable`].
        struct_id: u16,
        /// Number of initializers (= number of fields).
        argc: u16,
    },
    /// Pop the callee's parameter count of arguments; push a frame.
    Call(u16),
    /// Return the top of stack to the caller.
    Ret,
    /// Unconditional jump.
    Jump(u32),
    /// Pop a boolean; jump when false.
    JumpIfFalse(u32),
    /// Pop a maybe; when `some`, push the payload and fall through; when
    /// `none`, jump (pushing nothing).
    BranchNone(u32),
    /// Pop rhs, pop lhs; push the operation's result.
    Binary(BinOp),
    /// Pop a value; push the operation's result.
    Unary(UnOp),
    /// Pop a value; block until a matching `recv` of channel type `n`,
    /// transferring the value's reachable subgraph (EC3); push unit.
    Send(u16),
    /// Block until a matching `send` on channel type `n`; push the value.
    Recv(u16),
    /// Pop roots `b` then `a`; push whether their reachable subgraphs are
    /// disjoint (E15, §5.2).
    Disconnected,
}

/// A compiled function.
#[derive(Clone, Debug)]
pub struct CompiledFn {
    /// Function name.
    pub name: Symbol,
    /// Number of parameters (locals `0..n_params` at entry).
    pub n_params: usize,
    /// Total local slots.
    pub n_locals: usize,
    /// Instruction sequence.
    pub code: Vec<Inst>,
    /// Parameter types.
    pub param_tys: Vec<Type>,
    /// Result type.
    pub ret: Type,
}

/// A whole compiled program.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// Struct layouts.
    pub table: TypeTable,
    /// Functions.
    pub funcs: Vec<CompiledFn>,
    /// Function indices by name.
    pub fn_ids: HashMap<Symbol, usize>,
    /// Interned channel types for `Send`/`Recv`.
    pub channel_tys: Vec<Type>,
}

impl CompiledProgram {
    /// Looks up a function index by name.
    pub fn fn_id(&self, name: &str) -> Option<usize> {
        self.fn_ids.get(name).copied()
    }

    /// Total instruction count across functions.
    pub fn code_size(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inst_is_small() {
        // The interpreter clones instructions on every step; keep them small.
        assert!(std::mem::size_of::<Inst>() <= 16);
    }
}
