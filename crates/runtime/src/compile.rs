//! AST → IR compiler with lightweight (region-free) type inference.
//!
//! The compiler resolves variables to local slots and fields to indices.
//! It performs simple syntax-directed type inference — no regions, no
//! tracking — because field indices and `send` channel types need static
//! types. Programs are expected to have passed `fearless-core` checking
//! first; the inference here exists so the runtime can also execute
//! *rejected* programs (to demonstrate the dynamic faults the type system
//! prevents, experiment E8).

use std::collections::HashMap;

use fearless_syntax::{Expr, ExprKind, FnDef, Program, Symbol, Type};

use fearless_core::TypeError;

use crate::heap::TypeTable;
use crate::ir::{CompiledFn, CompiledProgram, Inst};

/// Compiles a parsed program.
///
/// # Errors
///
/// Reports unresolved names, arity mismatches, and type mismatches that
/// would make the IR ill-formed.
pub fn compile(program: &Program) -> Result<CompiledProgram, TypeError> {
    let table = TypeTable::new(program);
    let mut fn_ids = HashMap::new();
    for (i, f) in program.funcs.iter().enumerate() {
        fn_ids.insert(f.name.clone(), i);
    }
    let (funcs, channel_tys) = {
        let mut compiler = Compiler {
            program,
            table: &table,
            fn_ids: &fn_ids,
            channel_tys: Vec::new(),
        };
        let mut funcs = Vec::new();
        for f in &program.funcs {
            funcs.push(compiler.compile_fn(f)?);
        }
        (funcs, compiler.channel_tys)
    };
    Ok(CompiledProgram {
        table,
        funcs,
        fn_ids,
        channel_tys,
    })
}

struct Compiler<'a> {
    program: &'a Program,
    table: &'a TypeTable,
    fn_ids: &'a HashMap<Symbol, usize>,
    channel_tys: Vec<Type>,
}

struct FnCtx {
    scopes: Vec<HashMap<Symbol, (u16, Type)>>,
    n_locals: usize,
    code: Vec<Inst>,
    self_ty: Option<Symbol>,
}

impl FnCtx {
    fn lookup(&self, x: &Symbol) -> Option<(u16, Type)> {
        for scope in self.scopes.iter().rev() {
            if let Some(found) = scope.get(x) {
                return Some(found.clone());
            }
        }
        None
    }

    fn bind(&mut self, x: Symbol, ty: Type) -> u16 {
        let slot = self.n_locals as u16;
        self.n_locals += 1;
        self.scopes
            .last_mut()
            .expect("scope stack nonempty")
            .insert(x, (slot, ty));
        slot
    }

    fn emit(&mut self, inst: Inst) {
        self.code.push(inst);
    }

    fn here(&self) -> usize {
        self.code.len()
    }

    fn patch(&mut self, at: usize, target: u32) {
        match &mut self.code[at] {
            Inst::Jump(t) | Inst::JumpIfFalse(t) | Inst::BranchNone(t) => *t = target,
            other => panic!("patching non-jump {other:?}"),
        }
    }
}

impl<'a> Compiler<'a> {
    fn err(&self, msg: impl Into<String>, span: fearless_syntax::Span) -> TypeError {
        TypeError::new(msg, span)
    }

    fn channel_id(&mut self, ty: &Type) -> u16 {
        if let Some(i) = self.channel_tys.iter().position(|t| t == ty) {
            return i as u16;
        }
        self.channel_tys.push(ty.clone());
        (self.channel_tys.len() - 1) as u16
    }

    fn compile_fn(&mut self, def: &FnDef) -> Result<CompiledFn, TypeError> {
        let mut ctx = FnCtx {
            scopes: vec![HashMap::new()],
            n_locals: 0,
            code: Vec::new(),
            self_ty: None,
        };
        for p in &def.params {
            ctx.bind(p.name.clone(), p.ty.clone());
        }
        let ty = self.expr(&mut ctx, &def.body, Some(&def.ret))?;
        if ty != def.ret {
            return Err(self.err(
                format!("`{}` returns {}, declared {}", def.name, ty, def.ret),
                def.span,
            ));
        }
        ctx.emit(Inst::Ret);
        Ok(CompiledFn {
            name: def.name.clone(),
            n_params: def.params.len(),
            n_locals: ctx.n_locals,
            code: ctx.code,
            param_tys: def.params.iter().map(|p| p.ty.clone()).collect(),
            ret: def.ret.clone(),
        })
    }

    /// Compiles `e`, leaving exactly one value on the stack; returns its
    /// type.
    fn expr(
        &mut self,
        ctx: &mut FnCtx,
        e: &Expr,
        expected: Option<&Type>,
    ) -> Result<Type, TypeError> {
        let span = e.span;
        match &e.kind {
            ExprKind::Unit => {
                ctx.emit(Inst::PushUnit);
                Ok(Type::Unit)
            }
            ExprKind::Int(n) => {
                ctx.emit(Inst::PushInt(*n));
                Ok(Type::Int)
            }
            ExprKind::Bool(b) => {
                ctx.emit(Inst::PushBool(*b));
                Ok(Type::Bool)
            }
            ExprKind::Var(x) => {
                let (slot, ty) = ctx
                    .lookup(x)
                    .ok_or_else(|| self.err(format!("unknown variable `{x}`"), span))?;
                ctx.emit(Inst::Load(slot));
                Ok(ty)
            }
            ExprKind::SelfRef => {
                let sname = ctx
                    .self_ty
                    .clone()
                    .ok_or_else(|| self.err("`self` outside `new` initializer", span))?;
                ctx.emit(Inst::PushSelf);
                Ok(Type::Named(sname))
            }
            ExprKind::Field(recv, f) => {
                let rty = self.expr(ctx, recv, None)?;
                let (idx, fty) = self.field(&rty, f, span)?;
                ctx.emit(Inst::ReadField(idx));
                Ok(fty)
            }
            ExprKind::Take(recv, f) => {
                let rty = self.expr(ctx, recv, None)?;
                let (idx, fty) = self.field(&rty, f, span)?;
                if !matches!(fty, Type::Maybe(_)) {
                    return Err(self.err("`take` requires a maybe-typed field", span));
                }
                ctx.emit(Inst::TakeField(idx));
                Ok(fty)
            }
            ExprKind::AssignVar(x, rhs) => {
                let (slot, ty) = ctx
                    .lookup(x)
                    .ok_or_else(|| self.err(format!("unknown variable `{x}`"), span))?;
                self.expr_expect(ctx, rhs, &ty)?;
                ctx.emit(Inst::Store(slot));
                ctx.emit(Inst::PushUnit);
                Ok(Type::Unit)
            }
            ExprKind::AssignField(recv, f, rhs) => {
                let rty = self.expr(ctx, recv, None)?;
                let (idx, fty) = self.field(&rty, f, span)?;
                self.expr_expect(ctx, rhs, &fty)?;
                ctx.emit(Inst::WriteField(idx));
                Ok(Type::Unit)
            }
            ExprKind::Let { var, init, body } => {
                let ity = self.expr(ctx, init, None)?;
                ctx.scopes.push(HashMap::new());
                let slot = ctx.bind(var.clone(), ity);
                ctx.emit(Inst::Store(slot));
                let bty = self.expr(ctx, body, expected)?;
                ctx.scopes.pop();
                Ok(bty)
            }
            ExprKind::LetSome {
                var,
                init,
                then_branch,
                else_branch,
            } => {
                let ity = self.expr(ctx, init, None)?;
                let Type::Maybe(inner) = ity else {
                    return Err(self.err(
                        format!("`let some` requires a maybe type, found {ity}"),
                        span,
                    ));
                };
                let branch_at = ctx.here();
                ctx.emit(Inst::BranchNone(0));
                ctx.scopes.push(HashMap::new());
                let slot = ctx.bind(var.clone(), (*inner).clone());
                ctx.emit(Inst::Store(slot));
                let tty = self.expr(ctx, then_branch, expected)?;
                ctx.scopes.pop();
                let jump_at = ctx.here();
                ctx.emit(Inst::Jump(0));
                let else_lbl = ctx.here() as u32;
                ctx.patch(branch_at, else_lbl);
                let ety = self.expr(ctx, else_branch, expected.or(Some(&tty)))?;
                let end = ctx.here() as u32;
                ctx.patch(jump_at, end);
                self.join_types(&tty, &ety, span)
            }
            ExprKind::Seq(items) => {
                let mut ty = Type::Unit;
                let last = items.len().saturating_sub(1);
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        ctx.emit(Inst::Pop);
                    }
                    let exp = if i == last { expected } else { None };
                    ty = self.expr(ctx, item, exp)?;
                }
                if items.is_empty() {
                    ctx.emit(Inst::PushUnit);
                }
                Ok(ty)
            }
            ExprKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.expr_expect(ctx, cond, &Type::Bool)?;
                let branch_at = ctx.here();
                ctx.emit(Inst::JumpIfFalse(0));
                let tty = self.expr(ctx, then_branch, expected)?;
                let jump_at = ctx.here();
                ctx.emit(Inst::Jump(0));
                let else_lbl = ctx.here() as u32;
                ctx.patch(branch_at, else_lbl);
                let ety = self.expr(ctx, else_branch, expected.or(Some(&tty)))?;
                let end = ctx.here() as u32;
                ctx.patch(jump_at, end);
                self.join_types(&tty, &ety, span)
            }
            ExprKind::IfDisconnected {
                a,
                b,
                then_branch,
                else_branch,
            } => {
                let (slot_a, _) = ctx
                    .lookup(a)
                    .ok_or_else(|| self.err(format!("unknown variable `{a}`"), span))?;
                let (slot_b, _) = ctx
                    .lookup(b)
                    .ok_or_else(|| self.err(format!("unknown variable `{b}`"), span))?;
                ctx.emit(Inst::Load(slot_a));
                ctx.emit(Inst::Load(slot_b));
                ctx.emit(Inst::Disconnected);
                let branch_at = ctx.here();
                ctx.emit(Inst::JumpIfFalse(0));
                let tty = self.expr(ctx, then_branch, expected)?;
                let jump_at = ctx.here();
                ctx.emit(Inst::Jump(0));
                let else_lbl = ctx.here() as u32;
                ctx.patch(branch_at, else_lbl);
                let ety = self.expr(ctx, else_branch, expected.or(Some(&tty)))?;
                let end = ctx.here() as u32;
                ctx.patch(jump_at, end);
                self.join_types(&tty, &ety, span)
            }
            ExprKind::While { cond, body } => {
                let start = ctx.here() as u32;
                self.expr_expect(ctx, cond, &Type::Bool)?;
                let branch_at = ctx.here();
                ctx.emit(Inst::JumpIfFalse(0));
                self.expr(ctx, body, None)?;
                ctx.emit(Inst::Pop);
                ctx.emit(Inst::Jump(start));
                let end = ctx.here() as u32;
                ctx.patch(branch_at, end);
                ctx.emit(Inst::PushUnit);
                Ok(Type::Unit)
            }
            ExprKind::New(name, args) => {
                let struct_id = self
                    .table
                    .id_of(name)
                    .ok_or_else(|| self.err(format!("unknown struct `{name}`"), span))?;
                let layout = self.table.layout(struct_id).clone();
                if args.len() != layout.field_names.len() {
                    return Err(self.err(
                        format!(
                            "`new {name}` expects {} initializers, found {}",
                            layout.field_names.len(),
                            args.len()
                        ),
                        span,
                    ));
                }
                let saved = ctx.self_ty.replace(name.clone());
                for (arg, fty) in args.iter().zip(&layout.field_tys) {
                    self.expr_expect(ctx, arg, fty)?;
                }
                ctx.self_ty = saved;
                ctx.emit(Inst::New {
                    struct_id: struct_id as u16,
                    argc: args.len() as u16,
                });
                Ok(Type::Named(name.clone()))
            }
            ExprKind::SomeOf(inner) => {
                let inner_expected = match expected {
                    Some(Type::Maybe(t)) => Some((**t).clone()),
                    _ => None,
                };
                let ity = self.expr(ctx, inner, inner_expected.as_ref())?;
                ctx.emit(Inst::MakeSome);
                Ok(Type::maybe(ity))
            }
            ExprKind::NoneOf => {
                let Some(ty @ Type::Maybe(_)) = expected else {
                    return Err(self.err("cannot infer the type of `none` here", span));
                };
                ctx.emit(Inst::PushNone);
                Ok(ty.clone())
            }
            ExprKind::IsNone(inner) => {
                self.expr(ctx, inner, None)?;
                ctx.emit(Inst::IsNone);
                Ok(Type::Bool)
            }
            ExprKind::IsSome(inner) => {
                self.expr(ctx, inner, None)?;
                ctx.emit(Inst::IsSome);
                Ok(Type::Bool)
            }
            ExprKind::Call(name, args) => {
                let fid = *self
                    .fn_ids
                    .get(name)
                    .ok_or_else(|| self.err(format!("unknown function `{name}`"), span))?;
                let def = &self.program.funcs[fid];
                if args.len() != def.params.len() {
                    return Err(self.err(
                        format!(
                            "`{name}` expects {} arguments, found {}",
                            def.params.len(),
                            args.len()
                        ),
                        span,
                    ));
                }
                let param_tys: Vec<Type> = def.params.iter().map(|p| p.ty.clone()).collect();
                let ret = def.ret.clone();
                for (arg, pty) in args.iter().zip(&param_tys) {
                    self.expr_expect(ctx, arg, pty)?;
                }
                ctx.emit(Inst::Call(fid as u16));
                Ok(ret)
            }
            ExprKind::Send(inner) => {
                let ity = self.expr(ctx, inner, None)?;
                let ch = self.channel_id(&ity);
                ctx.emit(Inst::Send(ch));
                Ok(Type::Unit)
            }
            ExprKind::Recv(ty) => {
                let ch = self.channel_id(ty);
                ctx.emit(Inst::Recv(ch));
                Ok(ty.clone())
            }
            ExprKind::Binary(op, lhs, rhs) => {
                use fearless_syntax::BinOp::*;
                let (operand, out) = match op {
                    And | Or => (Some(Type::Bool), Type::Bool),
                    Eq | Ne | Lt | Le | Gt | Ge => (None, Type::Bool),
                    _ => (Some(Type::Int), Type::Int),
                };
                let lty = self.expr(ctx, lhs, operand.as_ref())?;
                self.expr_expect(ctx, rhs, &lty)?;
                let _ = out;
                ctx.emit(Inst::Binary(*op));
                Ok(match op {
                    And | Or | Eq | Ne | Lt | Le | Gt | Ge => Type::Bool,
                    _ => Type::Int,
                })
            }
            ExprKind::Unary(op, inner) => {
                let want = match op {
                    fearless_syntax::UnOp::Not => Type::Bool,
                    fearless_syntax::UnOp::Neg => Type::Int,
                };
                self.expr_expect(ctx, inner, &want)?;
                ctx.emit(Inst::Unary(*op));
                Ok(want)
            }
        }
    }

    fn expr_expect(&mut self, ctx: &mut FnCtx, e: &Expr, want: &Type) -> Result<(), TypeError> {
        let got = self.expr(ctx, e, Some(want))?;
        if &got != want {
            return Err(self.err(
                format!("type mismatch: expected {want}, found {got}"),
                e.span,
            ));
        }
        Ok(())
    }

    fn join_types(
        &self,
        a: &Type,
        b: &Type,
        span: fearless_syntax::Span,
    ) -> Result<Type, TypeError> {
        if a == b {
            Ok(a.clone())
        } else {
            Err(self.err(format!("branches have different types: {a} vs {b}"), span))
        }
    }

    fn field(
        &self,
        recv_ty: &Type,
        f: &Symbol,
        span: fearless_syntax::Span,
    ) -> Result<(u16, Type), TypeError> {
        let name = recv_ty
            .struct_name()
            .ok_or_else(|| self.err(format!("{recv_ty} has no fields"), span))?;
        if matches!(recv_ty, Type::Maybe(_)) {
            return Err(self.err(format!("cannot access field of maybe type {recv_ty}"), span));
        }
        let sid = self
            .table
            .id_of(name)
            .ok_or_else(|| self.err(format!("unknown struct `{name}`"), span))?;
        let layout = self.table.layout(sid);
        let idx = layout
            .field_index(f)
            .ok_or_else(|| self.err(format!("struct `{name}` has no field `{f}`"), span))?;
        Ok((idx as u16, layout.field_tys[idx].clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fearless_syntax::parse_program;

    fn compile_src(src: &str) -> CompiledProgram {
        compile(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn compiles_arithmetic() {
        let p = compile_src("def add(a: int, b: int) : int { a + b * 2 }");
        let f = &p.funcs[0];
        assert_eq!(f.n_params, 2);
        assert!(f.code.contains(&Inst::Binary(fearless_syntax::BinOp::Mul)));
        assert!(matches!(f.code.last(), Some(Inst::Ret)));
    }

    #[test]
    fn compiles_field_access() {
        let p = compile_src(
            "struct data { value: int }
             def get(d: data) : int { d.value }",
        );
        assert!(p.funcs[0].code.contains(&Inst::ReadField(0)));
    }

    #[test]
    fn compiles_let_some_with_jumps() {
        let p = compile_src(
            "struct data { value: int }
             def get(m: data?) : int {
               let some(d) = m in { d.value } else { 0 - 1 }
             }",
        );
        let code = &p.funcs[0].code;
        assert!(code.iter().any(|i| matches!(i, Inst::BranchNone(_))));
    }

    #[test]
    fn compiles_while_loop() {
        let p = compile_src(
            "def count(n: int) : int {
               let acc = 0;
               while (n > 0) { acc = acc + n; n = n - 1 };
               acc
             }",
        );
        let code = &p.funcs[0].code;
        assert!(code.iter().any(|i| matches!(i, Inst::JumpIfFalse(_))));
        assert!(code.iter().any(|i| matches!(i, Inst::Jump(_))));
    }

    #[test]
    fn interns_channel_types() {
        let p = compile_src(
            "struct data { value: int }
             def f(d: data) : data consumes d { send(d); recv(data) }",
        );
        assert_eq!(p.channel_tys.len(), 1);
        assert_eq!(p.channel_tys[0], Type::named("data"));
    }

    #[test]
    fn rejects_unknown_variable() {
        let r = compile(&parse_program("def f(a: int) : int { b }").unwrap());
        assert!(r.is_err());
    }

    #[test]
    fn rejects_return_type_mismatch() {
        let r = compile(&parse_program("def f(a: int) : bool { a }").unwrap());
        assert!(r.is_err());
    }

    #[test]
    fn compiles_new_with_self() {
        let p = compile_src(
            "struct data { value: int }
             struct node { iso payload : data; next : node; prev : node }
             def mk() : node { new node(new data(1), self, self) }",
        );
        let code = &p.funcs[0].code;
        assert_eq!(
            code.iter().filter(|i| matches!(i, Inst::PushSelf)).count(),
            2
        );
        assert!(code.iter().any(|i| matches!(i, Inst::New { .. })));
    }
}
