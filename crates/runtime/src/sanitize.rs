//! Dynamic tempered-domination sanitizer.
//!
//! Tempered domination (§2.1) promises that every *untracked* `iso` field
//! dominates its target's reachable subgraph: any heap path into the
//! subgraph passes through that field. Statically the checker guarantees
//! this; the sanitizer re-checks it *dynamically* after every machine step
//! so that unchecked programs (and checker bugs) surface the first moment
//! the heap violates the discipline.
//!
//! The invariant checked here is the heap-edge form, which is insensitive
//! to legal stack aliasing and focus: for every `iso` edge `s.f ↦ t`, no
//! *other* heap edge may cross from outside `reach(t)` into `reach(t)`,
//! where `reach(t)` closes over all fields (back-edges such as a
//! doubly-linked list's `prev`, or a tree's parent pointers, keep their
//! sources inside the subgraph, so intra-region aliasing never trips the
//! check — exactly the flexibility tempered domination buys).

use std::collections::BTreeSet;
use std::fmt;

use fearless_syntax::Symbol;

use crate::heap::Heap;
use crate::value::{ObjId, Value};

/// A violation of the tempered-domination heap invariant: an `iso` edge
/// whose dominated subgraph is entered by a second, foreign edge.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DominationViolation {
    /// Source object of the `iso` edge.
    pub owner: ObjId,
    /// The `iso` field.
    pub field: Symbol,
    /// The field's target (root of the dominated subgraph).
    pub target: ObjId,
    /// Source object of the intruding edge (outside the subgraph).
    pub intruder: ObjId,
    /// The intruding field.
    pub intruder_field: Symbol,
    /// Object inside the subgraph the intruding edge points to.
    pub into: ObjId,
    /// Heap path `target → … → into` witnessing that `into` is dominated,
    /// as `(object, field)` hops. Empty when `into == target`.
    pub path: Vec<(ObjId, Symbol)>,
}

impl fmt::Display for DominationViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "iso edge {}.{} ↦ {} is not dominating: foreign edge {}.{} ↦ {} enters its subgraph",
            self.owner, self.field, self.target, self.intruder, self.intruder_field, self.into
        )?;
        if !self.path.is_empty() {
            write!(f, " (dominated via {}", self.target)?;
            for (obj, fld) in &self.path {
                write!(f, " → {obj}.{fld}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// One directed heap edge `src.field ↦ dst`.
#[derive(Clone, Debug)]
struct HeapEdge {
    src: ObjId,
    field: Symbol,
    dst: ObjId,
    iso: bool,
}

fn edges(heap: &Heap) -> Vec<HeapEdge> {
    let mut out = Vec::new();
    for (id, obj) in heap.iter() {
        let layout = heap.table().layout(obj.struct_id);
        for (i, v) in obj.fields.iter().enumerate() {
            if let Some(dst) = v.as_loc() {
                out.push(HeapEdge {
                    src: id,
                    field: layout.field_names[i].clone(),
                    dst,
                    iso: layout.iso[i],
                });
            }
        }
    }
    out
}

/// Heap path from `from` to `to` over all fields, as `(object, field)`
/// hops (BFS, so the shortest witness).
fn witness_path(heap: &Heap, from: ObjId, to: ObjId) -> Vec<(ObjId, Symbol)> {
    use std::collections::{BTreeMap, VecDeque};
    if from == to {
        return Vec::new();
    }
    let mut parent: BTreeMap<ObjId, (ObjId, Symbol)> = BTreeMap::new();
    let mut queue = VecDeque::from([from]);
    while let Some(cur) = queue.pop_front() {
        let Ok(obj) = heap.get(cur) else { continue };
        let layout = heap.table().layout(obj.struct_id);
        for (i, v) in obj.fields.iter().enumerate() {
            if let Some(next) = v.as_loc() {
                if next != from && !parent.contains_key(&next) {
                    parent.insert(next, (cur, layout.field_names[i].clone()));
                    if next == to {
                        let mut path = Vec::new();
                        let mut at = to;
                        while at != from {
                            let (prev, fld) = parent[&at].clone();
                            path.push((prev, fld));
                            at = prev;
                        }
                        path.reverse();
                        return path;
                    }
                    queue.push_back(next);
                }
            }
        }
    }
    Vec::new()
}

/// Asserts tempered domination for the single `iso` edge `e` against
/// every other heap edge.
fn check_edge(heap: &Heap, all: &[HeapEdge], e: &HeapEdge) -> Result<(), DominationViolation> {
    let reach: BTreeSet<ObjId> = heap.live_set(&Value::Loc(e.dst)).into_iter().collect();
    for other in all {
        let same_edge = other.src == e.src && other.field == e.field && other.dst == e.dst;
        if same_edge || !reach.contains(&other.dst) || reach.contains(&other.src) {
            continue;
        }
        return Err(DominationViolation {
            owner: e.src,
            field: e.field.clone(),
            target: e.dst,
            intruder: other.src,
            intruder_field: other.field.clone(),
            into: other.dst,
            path: witness_path(heap, e.dst, other.dst),
        });
    }
    Ok(())
}

/// Walks the whole heap and asserts tempered domination for every `iso`
/// edge, returning the number of `iso` edges checked.
///
/// # Errors
///
/// Returns the first [`DominationViolation`] found (edges are visited in
/// allocation order, so the report is deterministic).
pub fn check_domination(heap: &Heap) -> Result<usize, DominationViolation> {
    let all = edges(heap);
    let mut checked = 0usize;
    for e in &all {
        if !e.iso {
            continue;
        }
        checked += 1;
        check_edge(heap, &all, e)?;
    }
    Ok(checked)
}

/// Re-checks only the `iso` edges a step touching `touched` could have
/// violated, returning the number of `iso` edges checked.
///
/// `touched` is the set of objects named by a heap-mutating step: the
/// written object, every location in the old and new field values, and a
/// fresh allocation plus its reference initializers. The edges that need
/// re-checking are exactly those `s.f ↦ t` where `t` reaches a touched
/// object in the *post-step* heap:
///
/// * a new edge `o.g ↦ d` entering `reach(t)` has `d ∈ touched` and
///   `d ∈ reach(t)`, so `t` reaches a touched object;
/// * a freshly created `iso` edge itself has its target in `touched`;
/// * extending `reach(t)` (by writing a field of some `o ∈ reach(t)`)
///   means `t` reaches `o ∈ touched`;
/// * removing an edge `o.g ↦ d` can only newly violate an `iso` edge
///   whose subgraph still contains `o` (the removed edge's source), and
///   `o ∈ touched` — the path `t → … → o` never used the removed edge,
///   whose source is `o` itself.
///
/// "`t` reaches a touched object" is computed as the backward-reachable
/// closure of `touched` over all heap edges. Given a heap that satisfied
/// domination *before* the step (the machine's inductive discipline:
/// every prior step was either skipped because it provably changed no
/// edge, or checked), a pass here implies the full
/// [`check_domination`] would pass too.
///
/// # Errors
///
/// Returns the first [`DominationViolation`] found, in the same
/// deterministic allocation order as the full walk.
pub fn check_domination_touched(
    heap: &Heap,
    touched: &[ObjId],
) -> Result<usize, DominationViolation> {
    if touched.is_empty() {
        return Ok(0);
    }
    let all = edges(heap);
    // Backward closure: every object with a heap path *to* a touched one.
    let mut hot: BTreeSet<ObjId> = touched.iter().copied().collect();
    loop {
        let mut grew = false;
        for e in &all {
            if hot.contains(&e.dst) && hot.insert(e.src) {
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    let mut checked = 0usize;
    for e in &all {
        if !e.iso || !hot.contains(&e.dst) {
            continue;
        }
        checked += 1;
        check_edge(heap, &all, e)?;
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::TypeTable;
    use fearless_syntax::parse_program;

    fn table() -> TypeTable {
        let p = parse_program(
            "struct data { value: int }
             struct sll_node { iso payload : data; iso next : sll_node? }
             struct dll_node { iso payload : data; next : dll_node; prev : dll_node }",
        )
        .unwrap();
        TypeTable::new(&p)
    }

    #[test]
    fn clean_list_passes() {
        let t = table();
        let mut heap = Heap::new(t.clone());
        let data = t.id_of(&"data".into()).unwrap();
        let node = t.id_of(&"sll_node".into()).unwrap();
        let d1 = heap.alloc(data, vec![Value::Int(1)]);
        let d2 = heap.alloc(data, vec![Value::Int(2)]);
        let tail = heap.alloc(node, vec![Value::Loc(d2), Value::none()]);
        let _head = heap.alloc(node, vec![Value::Loc(d1), Value::some(Value::Loc(tail))]);
        let checked = check_domination(&heap).unwrap();
        // Two payload edges plus head.next; tail.next is `none`.
        assert_eq!(checked, 3);
    }

    #[test]
    fn intra_region_back_edges_are_legal() {
        // A circular doubly-linked list: next/prev are non-iso and form
        // cycles, but every node is inside the payload-free subgraph.
        let t = table();
        let mut heap = Heap::new(t.clone());
        let data = t.id_of(&"data".into()).unwrap();
        let node = t.id_of(&"dll_node".into()).unwrap();
        let d1 = heap.alloc(data, vec![Value::Int(1)]);
        let d2 = heap.alloc(data, vec![Value::Int(2)]);
        let a = heap.alloc(
            node,
            vec![
                Value::Loc(d1),
                Value::Loc(ObjId::SELF_PLACEHOLDER),
                Value::Loc(ObjId::SELF_PLACEHOLDER),
            ],
        );
        let b = heap.alloc(node, vec![Value::Loc(d2), Value::Loc(a), Value::Loc(a)]);
        heap.write_field(a, 1, Value::Loc(b)).unwrap();
        heap.write_field(a, 2, Value::Loc(b)).unwrap();
        check_domination(&heap).unwrap();
    }

    #[test]
    fn shared_iso_target_is_a_violation() {
        // Two nodes claim the same payload through iso fields.
        let t = table();
        let mut heap = Heap::new(t.clone());
        let data = t.id_of(&"data".into()).unwrap();
        let node = t.id_of(&"sll_node".into()).unwrap();
        let d = heap.alloc(data, vec![Value::Int(7)]);
        let n1 = heap.alloc(node, vec![Value::Loc(d), Value::none()]);
        let n2 = heap.alloc(node, vec![Value::Loc(d), Value::none()]);
        let violation = check_domination(&heap).unwrap_err();
        assert_eq!(violation.target, d);
        assert_eq!(violation.into, d);
        let owners = [violation.owner, violation.intruder];
        assert!(owners.contains(&n1) && owners.contains(&n2));
        let shown = violation.to_string();
        assert!(shown.contains("not dominating"), "{shown}");
    }

    #[test]
    fn touched_check_finds_violation_named_by_touched_set() {
        // Same shared-payload heap as `shared_iso_target_is_a_violation`,
        // but checked through the partial walk: touching just the second
        // node (the step that created the foreign edge) must suffice.
        let t = table();
        let mut heap = Heap::new(t.clone());
        let data = t.id_of(&"data".into()).unwrap();
        let node = t.id_of(&"sll_node".into()).unwrap();
        let d = heap.alloc(data, vec![Value::Int(7)]);
        let _n1 = heap.alloc(node, vec![Value::Loc(d), Value::none()]);
        let n2 = heap.alloc(node, vec![Value::Loc(d), Value::none()]);
        // The allocating step names the fresh object and its initializers.
        let violation = check_domination_touched(&heap, &[n2, d]).unwrap_err();
        assert_eq!(violation.into, d);
        // An empty touched set checks nothing.
        assert_eq!(check_domination_touched(&heap, &[]).unwrap(), 0);
    }

    #[test]
    fn touched_check_skips_unrelated_subgraphs() {
        // Two disjoint clean lists: touching one re-checks only the edges
        // whose subgraph reaches it.
        let t = table();
        let mut heap = Heap::new(t.clone());
        let data = t.id_of(&"data".into()).unwrap();
        let node = t.id_of(&"sll_node".into()).unwrap();
        let d1 = heap.alloc(data, vec![Value::Int(1)]);
        let n1 = heap.alloc(node, vec![Value::Loc(d1), Value::none()]);
        let d2 = heap.alloc(data, vec![Value::Int(2)]);
        let _n2 = heap.alloc(node, vec![Value::Loc(d2), Value::none()]);
        let full = check_domination(&heap).unwrap();
        assert_eq!(full, 2);
        // Touching n1's payload re-checks n1.payload only.
        assert_eq!(check_domination_touched(&heap, &[d1]).unwrap(), 1);
        // Touching the node itself reaches no iso-edge target, so only
        // edges whose subgraph contains n1 would re-check; none point at
        // the node, but n1 itself backward-reaches nothing more.
        assert_eq!(check_domination_touched(&heap, &[n1]).unwrap(), 0);
    }

    #[test]
    fn foreign_edge_into_subgraph_interior_reports_path() {
        // n1 --iso next--> n2 --iso payload--> d, and a foreign node n3
        // aliases d through its own payload: the violation on n1.next's
        // subgraph carries the witness path n2.payload.
        let t = table();
        let mut heap = Heap::new(t.clone());
        let data = t.id_of(&"data".into()).unwrap();
        let node = t.id_of(&"sll_node".into()).unwrap();
        let d = heap.alloc(data, vec![Value::Int(7)]);
        let n2 = heap.alloc(node, vec![Value::Loc(d), Value::none()]);
        let _n1 = heap.alloc(node, vec![Value::none(), Value::some(Value::Loc(n2))]);
        let _n3 = heap.alloc(node, vec![Value::Loc(d), Value::none()]);
        let violation = check_domination(&heap).unwrap_err();
        assert_eq!(violation.into, d);
        let shown = violation.to_string();
        assert!(shown.contains("enters its subgraph"), "{shown}");
    }
}
