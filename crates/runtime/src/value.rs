//! Run-time values: the only values of the core calculus are locations
//! (Fig. 7); we add machine integers, booleans, unit, and first-class
//! maybes per the surface language.

use std::fmt;

/// A heap location.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ObjId(pub u32);

impl ObjId {
    /// Sentinel used while constructing an object whose initializers
    /// mention `self`; patched by `New` before the object escapes.
    pub const SELF_PLACEHOLDER: ObjId = ObjId(u32::MAX);
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

/// A run-time value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Value {
    /// The unit value.
    Unit,
    /// An integer.
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// A reference to a heap object.
    Loc(ObjId),
    /// A maybe value (`none` / `some(v)`).
    Maybe(Option<Box<Value>>),
}

impl Value {
    /// `some(v)`.
    pub fn some(v: Value) -> Value {
        Value::Maybe(Some(Box::new(v)))
    }

    /// `none`.
    pub fn none() -> Value {
        Value::Maybe(None)
    }

    /// The location directly referenced by this value, if any (descends
    /// through maybes).
    pub fn as_loc(&self) -> Option<ObjId> {
        match self {
            Value::Loc(l) => Some(*l),
            Value::Maybe(Some(inner)) => inner.as_loc(),
            _ => None,
        }
    }

    /// Whether this is `none`.
    pub fn is_none(&self) -> bool {
        matches!(self, Value::Maybe(None))
    }

    /// Expects an integer.
    pub fn expect_int(&self) -> i64 {
        match self {
            Value::Int(n) => *n,
            other => panic!("expected int, found {other:?}"),
        }
    }

    /// Expects a boolean.
    pub fn expect_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            other => panic!("expected bool, found {other:?}"),
        }
    }

    /// Replaces `SELF_PLACEHOLDER` locations with `id` (used by `new` with
    /// `self` initializers).
    pub fn patch_self(&mut self, id: ObjId) {
        match self {
            Value::Loc(l) if *l == ObjId::SELF_PLACEHOLDER => *l = id,
            Value::Maybe(Some(inner)) => inner.patch_self(id),
            _ => {}
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "unit"),
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Loc(l) => write!(f, "{l}"),
            Value::Maybe(None) => write!(f, "none"),
            Value::Maybe(Some(v)) => write!(f, "some({v})"),
        }
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn as_loc_descends_maybes() {
        let v = Value::some(Value::Loc(ObjId(3)));
        assert_eq!(v.as_loc(), Some(ObjId(3)));
        assert_eq!(Value::none().as_loc(), None);
        assert_eq!(Value::Int(1).as_loc(), None);
    }

    #[test]
    fn patch_self_descends() {
        let mut v = Value::some(Value::Loc(ObjId::SELF_PLACEHOLDER));
        v.patch_self(ObjId(7));
        assert_eq!(v.as_loc(), Some(ObjId(7)));
    }

    #[test]
    fn display() {
        assert_eq!(Value::some(Value::Int(4)).to_string(), "some(4)");
        assert_eq!(Value::none().to_string(), "none");
        assert_eq!(Value::Loc(ObjId(2)).to_string(), "ℓ2");
    }
}
