//! Pluggable thread scheduling for the abstract machine.
//!
//! The paper's soundness theorems quantify over *every* interleaving of
//! machine threads, so the machine must not bake in one schedule. This
//! module abstracts every scheduling decision the run loop makes behind
//! the [`Schedule`] trait:
//!
//! * which runnable thread steps next ([`Schedule::pick`]),
//! * how many instructions it may run before the next decision point
//!   ([`Schedule::quantum`]),
//! * whether a possible send/recv rendezvous is delivered now or
//!   deferred ([`Schedule::defer_delivery`] — the hook fault injectors
//!   use to model message delay, reorder, and drop-with-redelivery), and
//! * which sender/receiver pair is matched when several are blocked on
//!   the same channel ([`Schedule::pick_pair`]).
//!
//! Two built-in implementations reproduce the machine's historical
//! behavior: [`RoundRobin`] (the default) and [`SeededRandom`]
//! (`MachineConfig::random_schedule`). Adversarial schedules — the
//! `fearless-chaos` explorer — live outside this crate and plug in via
//! [`crate::Machine::set_schedule`].
//!
//! Progress guarantee: deferral is advisory. When no thread is runnable
//! but a matchable sender/receiver pair exists, the run loop *forces*
//! the delivery (reporting it through [`Schedule::on_forced_delivery`]),
//! so a deferring schedule can delay or reorder messages but never turn
//! a live program into a deadlock.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A scheduling policy consulted by [`crate::Machine::run`].
///
/// All methods must be deterministic functions of the schedule's own
/// state: the machine guarantees that identical configurations and
/// identical schedules produce byte-identical runs.
pub trait Schedule {
    /// Picks the next thread to step from `runnable` (non-empty, sorted
    /// ascending by thread id). Returns a *thread id* drawn from
    /// `runnable`.
    fn pick(&mut self, runnable: &[usize]) -> usize;

    /// Number of instructions the picked thread may execute before the
    /// next decision point (must be ≥ 1).
    fn quantum(&mut self) -> u32 {
        64
    }

    /// Whether to defer a deliverable rendezvous on `ch`. Deferred
    /// deliveries are retried at every later decision point and forced
    /// when nothing else can run, so deferral models delay/drop with
    /// guaranteed redelivery, never loss.
    fn defer_delivery(&mut self, _ch: u16) -> bool {
        false
    }

    /// Chooses which blocked sender and receiver to pair on a channel
    /// (both slices non-empty, sorted ascending by thread id). Returns
    /// `(sender_tid, receiver_tid)`.
    fn pick_pair(&mut self, senders: &[usize], receivers: &[usize]) -> (usize, usize) {
        (senders[0], receivers[0])
    }

    /// Notification that a deferred delivery on `ch` was forced because
    /// no thread was runnable (fault injectors count these).
    fn on_forced_delivery(&mut self, _ch: u16) {}
}

/// The default cooperative schedule: threads step in cyclic order with a
/// fixed quantum, and rendezvous are delivered eagerly.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl Schedule for RoundRobin {
    fn pick(&mut self, runnable: &[usize]) -> usize {
        self.next = (self.next + 1) % runnable.len().max(1);
        runnable[self.next % runnable.len()]
    }
}

/// Uniform random thread choice from a seeded PRNG, with the default
/// quantum and eager delivery (`MachineConfig::random_schedule`).
#[derive(Debug)]
pub struct SeededRandom {
    rng: StdRng,
}

impl SeededRandom {
    /// Builds the schedule from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SeededRandom {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Schedule for SeededRandom {
    fn pick(&mut self, runnable: &[usize]) -> usize {
        runnable[self.rng.gen_range(0..runnable.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let mut s = RoundRobin::default();
        let runnable = [0usize, 1, 2];
        let picks: Vec<usize> = (0..6).map(|_| s.pick(&runnable)).collect();
        assert_eq!(picks, vec![1, 2, 0, 1, 2, 0]);
        assert_eq!(s.quantum(), 64);
        assert!(!s.defer_delivery(0));
    }

    #[test]
    fn seeded_random_is_reproducible() {
        let runnable = [0usize, 1, 2, 3];
        let a: Vec<usize> = {
            let mut s = SeededRandom::new(7);
            (0..32).map(|_| s.pick(&runnable)).collect()
        };
        let b: Vec<usize> = {
            let mut s = SeededRandom::new(7);
            (0..32).map(|_| s.pick(&runnable)).collect()
        };
        assert_eq!(a, b);
        let c: Vec<usize> = {
            let mut s = SeededRandom::new(8);
            (0..32).map(|_| s.pick(&runnable)).collect()
        };
        assert_ne!(a, c, "different seeds should explore different orders");
    }

    #[test]
    fn default_pair_pick_is_lowest_ids() {
        let mut s = RoundRobin::default();
        assert_eq!(s.pick_pair(&[2, 5], &[1, 4]), (2, 1));
    }
}
