//! The concurrent abstract machine: per-thread frames, disjoint
//! reservations, the dynamic reservation checks of Fig. 7, and the paired
//! send/recv step of Fig. 15.

use std::collections::HashSet;

use fearless_core::TypeError;
use fearless_syntax::{BinOp, Program, UnOp};
use fearless_trace::{Json, TraceSink};

use crate::compile::compile;
use crate::disconnect::{efficient_disconnected, naive_disconnected, DisconnectStrategy};
use crate::error::RuntimeError;
use crate::flow::{FlowIndex, StepSafety};
use crate::heap::Heap;
use crate::ir::{CompiledProgram, Inst};
use crate::schedule::{RoundRobin, Schedule, SeededRandom};
use crate::value::{ObjId, Value};

/// Machine configuration.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// Enforce the dynamic reservation discipline of §3.2 (`d` in the
    /// small-step rules). Theorems 6.1/6.2 show these checks never fire
    /// for well-typed programs, so real implementations erase them;
    /// experiment E6 measures the cost.
    pub check_reservations: bool,
    /// Which `if disconnected` implementation to run.
    pub strategy: DisconnectStrategy,
    /// Scheduler seed (for exploring interleavings).
    pub seed: u64,
    /// Randomize thread scheduling (round-robin when false).
    pub random_schedule: bool,
    /// Abort after this many instructions (guards non-terminating tests).
    pub max_steps: u64,
    /// Walk the heap after every step and assert tempered domination for
    /// every `iso` edge (the `--sanitize-domination` mode). Off by default:
    /// the run loop pays only an untaken branch per step when disabled.
    pub sanitize_domination: bool,
    /// Step-fuel budget: when set, [`Machine::run`] yields
    /// [`RuntimeError::FuelExhausted`] once this many instructions have
    /// executed. Unlike `max_steps` (an internal guard against
    /// non-terminating *tests*, reported as [`RuntimeError::StepLimit`]),
    /// fuel is a caller-facing budget — the chaos harness and fuzz
    /// drivers rely on it to turn runaway programs into a clean,
    /// deterministic error instead of a hang.
    pub fuel: Option<u64>,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            check_reservations: true,
            strategy: DisconnectStrategy::Efficient,
            seed: 0,
            random_schedule: false,
            max_steps: 200_000_000,
            sanitize_domination: false,
            fuel: None,
        }
    }
}

/// Execution counters for the experiments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Instructions executed.
    pub steps: u64,
    /// Heap field reads.
    pub field_reads: u64,
    /// Heap field writes.
    pub field_writes: u64,
    /// Objects allocated.
    pub allocs: u64,
    /// Messages sent.
    pub sends: u64,
    /// Messages received.
    pub recvs: u64,
    /// `if disconnected` checks executed.
    pub disconnect_checks: u64,
    /// Objects visited across all disconnection checks.
    pub disconnect_visited: u64,
    /// Dynamic reservation checks performed.
    pub reservation_checks: u64,
    /// Reservation checks that *failed* (the access faulted). Counted
    /// separately from checks performed: Theorems 6.1/6.2 say this stays
    /// zero for well-typed programs.
    pub reservation_failures: u64,
    /// `iso` edges checked by the domination sanitizer (zero when the
    /// sanitizer is disabled).
    pub sanitize_checks: u64,
    /// Full-heap walks performed by the domination sanitizer (one per
    /// step when enabled and no flow facts classify the step).
    pub sanitize_walks: u64,
    /// Sanitizer walks skipped because flow facts classified the step as
    /// [`StepSafety::Safe`] (provably no heap-edge change).
    pub sanitize_skipped: u64,
    /// Partial re-walks performed because flow facts classified the step
    /// as [`StepSafety::RegionLocal`]: only `iso` edges whose subgraph
    /// reaches a touched object were re-checked.
    pub sanitize_partial_walks: u64,
    /// Machines (threads) spawned over the run's lifetime.
    pub machines: u64,
    /// Largest number of senders found blocked on one channel at any
    /// delivery — the run-wide peak mailbox depth (see
    /// [`crate::lanes::LaneStats::peak_mailbox_depth`] for the
    /// per-machine attribution).
    pub peak_mailbox_depth: u64,
}

impl Stats {
    /// Every counter as a `(name, value)` pair, in declaration order. The
    /// single source of truth for serialization: a field added to the
    /// struct without extending this table fails the exhaustiveness test
    /// below.
    pub fn fields(&self) -> [(&'static str, u64); 16] {
        [
            ("steps", self.steps),
            ("field_reads", self.field_reads),
            ("field_writes", self.field_writes),
            ("allocs", self.allocs),
            ("sends", self.sends),
            ("recvs", self.recvs),
            ("disconnect_checks", self.disconnect_checks),
            ("disconnect_visited", self.disconnect_visited),
            ("reservation_checks", self.reservation_checks),
            ("reservation_failures", self.reservation_failures),
            ("sanitize_checks", self.sanitize_checks),
            ("sanitize_walks", self.sanitize_walks),
            ("sanitize_skipped", self.sanitize_skipped),
            ("sanitize_partial_walks", self.sanitize_partial_walks),
            ("machines", self.machines),
            ("peak_mailbox_depth", self.peak_mailbox_depth),
        ]
    }

    /// The counters as a JSON object (declaration order, deterministic).
    pub fn to_json_value(&self) -> Json {
        Json::obj(self.fields().map(|(k, v)| (k, Json::U64(v))))
    }

    /// Rendered JSON.
    pub fn to_json(&self) -> String {
        self.to_json_value().render()
    }
}

/// One call frame.
#[derive(Debug)]
struct Frame {
    func: usize,
    pc: usize,
    locals: Vec<Value>,
    stack: Vec<Value>,
}

/// Thread status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ThreadStatus {
    /// Ready to step.
    Runnable,
    /// Blocked sending a value on a channel.
    BlockedSend(u16, Value),
    /// Blocked receiving from a channel.
    BlockedRecv(u16),
    /// Finished with a result.
    Done(Value),
}

/// A thread: frames plus its dynamic reservation `d`.
#[derive(Debug)]
pub struct Thread {
    frames: Vec<Frame>,
    status: ThreadStatus,
    reservation: HashSet<ObjId>,
    /// Step count at which the thread last blocked on a channel; the
    /// difference at delivery is the message's mailbox residence.
    blocked_at: u64,
}

impl Thread {
    /// The thread's status.
    pub fn status(&self) -> &ThreadStatus {
        &self.status
    }

    /// The thread's result, if finished.
    pub fn result(&self) -> Option<&Value> {
        match &self.status {
            ThreadStatus::Done(v) => Some(v),
            _ => None,
        }
    }

    /// The thread's current reservation.
    pub fn reservation(&self) -> &HashSet<ObjId> {
        &self.reservation
    }
}

/// The concurrent machine.
pub struct Machine {
    program: CompiledProgram,
    heap: Heap,
    threads: Vec<Thread>,
    config: MachineConfig,
    stats: Stats,
    /// Per-machine telemetry, index-aligned with `threads`.
    lanes: Vec<crate::lanes::LaneStats>,
    /// The scheduling policy. Built from the config (round-robin, or
    /// seeded-random with `random_schedule`) and replaceable via
    /// [`Machine::set_schedule`] for adversarial exploration.
    schedule: Box<dyn Schedule>,
    /// Attached instrumentation sink. `None` (the default) costs one
    /// untaken branch at each emission site — the same disabled-path
    /// discipline as `sanitize_domination`, verified by the `trace_parity`
    /// bench test.
    sink: Option<Box<dyn TraceSink>>,
    /// Static step-safety verdicts consulted by the domination sanitizer.
    /// `None` (the default) means every step gets the full walk.
    flow: Option<FlowIndex>,
    /// Differential soundness oracle: when set, every step the flow index
    /// let the sanitizer skip or partially check is *also* full-walked,
    /// and a disagreement raises [`RuntimeError::FlowUnsound`].
    flow_crosscheck: bool,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("threads", &self.threads.len())
            .field("heap_objects", &self.heap.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Machine {
    /// Compiles `program` and builds a machine with the default config.
    ///
    /// # Errors
    ///
    /// Propagates compile errors (unknown names, arity/type mismatches).
    pub fn new(program: &Program) -> Result<Self, TypeError> {
        Self::with_config(program, MachineConfig::default())
    }

    /// Compiles `program` with an explicit config.
    ///
    /// # Errors
    ///
    /// Propagates compile errors.
    pub fn with_config(program: &Program, config: MachineConfig) -> Result<Self, TypeError> {
        Ok(Self::from_compiled(compile(program)?, config))
    }

    /// Builds a machine from an already compiled program.
    pub fn from_compiled(program: CompiledProgram, config: MachineConfig) -> Self {
        let heap = Heap::new(program.table.clone());
        let schedule: Box<dyn Schedule> = if config.random_schedule {
            Box::new(SeededRandom::new(config.seed))
        } else {
            Box::new(RoundRobin::default())
        };
        Machine {
            program,
            heap,
            threads: Vec::new(),
            config,
            stats: Stats::default(),
            lanes: Vec::new(),
            schedule,
            sink: None,
            flow: None,
            flow_crosscheck: false,
        }
    }

    /// Installs static step-safety verdicts (see [`FlowIndex`]). With the
    /// sanitizer enabled, `Safe` steps skip the walk, `RegionLocal` steps
    /// re-check only the `iso` edges reaching the step's touched objects,
    /// and `Unknown` steps keep the full walk. Without the sanitizer this
    /// has no effect.
    pub fn set_flow_index(&mut self, index: FlowIndex) {
        self.flow = Some(index);
    }

    /// Enables the differential soundness oracle: every skipped or
    /// partial sanitizer check is shadowed by a full walk, and a full
    /// walk failing where the classified check passed raises
    /// [`RuntimeError::FlowUnsound`]. For testing the flow analysis, not
    /// for production runs (it is strictly slower than no flow index).
    pub fn set_flow_crosscheck(&mut self, on: bool) {
        self.flow_crosscheck = on;
    }

    /// Replaces the scheduling policy (see [`Schedule`]). Identical
    /// configurations with identical (deterministic) schedules produce
    /// byte-identical runs — the chaos harness's determinism guarantee.
    pub fn set_schedule(&mut self, schedule: Box<dyn Schedule>) {
        self.schedule = schedule;
    }

    /// Attaches an instrumentation sink. The machine emits a `disconnect`
    /// event (with the heap-walk size) per `if disconnected` evaluation
    /// and a `message` event per rendezvous; execution itself is
    /// unaffected.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Detaches and returns the sink (downcast it via
    /// [`TraceSink::into_any`] to recover the concrete collector).
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    /// Flushes the current [`Stats`] counters into the attached sink
    /// (no-op without one). Call after a run completes.
    pub fn emit_stats(&mut self) {
        if let Some(sink) = self.sink.as_mut() {
            for (name, value) in self.stats.fields() {
                sink.add(name, value);
            }
        }
    }

    /// The heap (for inspection in tests).
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Execution counters.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Per-machine telemetry lanes, index-aligned with thread ids.
    pub fn lanes(&self) -> &[crate::lanes::LaneStats] {
        &self.lanes
    }

    /// The compiled program.
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// A thread by id.
    pub fn thread(&self, tid: usize) -> &Thread {
        &self.threads[tid]
    }

    /// Number of threads.
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Spawns a thread running `func(args…)`. The thread's reservation is
    /// seeded with the reachable subgraphs of its arguments.
    ///
    /// # Errors
    ///
    /// Fails when the function is unknown or the arity is wrong.
    pub fn spawn(&mut self, func: &str, args: Vec<Value>) -> Result<usize, RuntimeError> {
        let fid = self
            .program
            .fn_id(func)
            .ok_or_else(|| RuntimeError::Missing(format!("function `{func}`")))?;
        let f = &self.program.funcs[fid];
        if args.len() != f.n_params {
            return Err(RuntimeError::Missing(format!(
                "`{func}` expects {} arguments, got {}",
                f.n_params,
                args.len()
            )));
        }
        let mut reservation = HashSet::new();
        if self.config.check_reservations {
            for a in &args {
                reservation.extend(self.heap.live_set(a));
            }
        }
        let mut locals = vec![Value::Unit; f.n_locals];
        locals[..args.len()].clone_from_slice(&args);
        self.threads.push(Thread {
            frames: vec![Frame {
                func: fid,
                pc: 0,
                locals,
                stack: Vec::new(),
            }],
            status: ThreadStatus::Runnable,
            reservation,
            blocked_at: 0,
        });
        self.lanes.push(crate::lanes::LaneStats::default());
        self.stats.machines += 1;
        Ok(self.threads.len() - 1)
    }

    /// Spawns `func(args…)` as the only activity and runs the machine to
    /// completion, returning the call's result.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`] raised during execution.
    pub fn call(&mut self, func: &str, args: Vec<Value>) -> Result<Value, RuntimeError> {
        let tid = self.spawn(func, args)?;
        self.run()?;
        Ok(self.threads[tid]
            .result()
            .cloned()
            .expect("run() leaves all threads done"))
    }

    /// Runs until every thread finishes.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Deadlock`] when all remaining threads are blocked,
    /// [`RuntimeError::StepLimit`] past the configured budget,
    /// [`RuntimeError::FuelExhausted`] past the configured fuel, or any
    /// fault raised by a thread.
    pub fn run(&mut self) -> Result<(), RuntimeError> {
        loop {
            // Decision point: retry rendezvous the schedule deferred
            // earlier (eager schedules never leave any pending).
            self.deliver_pending()?;
            let runnable: Vec<usize> = self
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == ThreadStatus::Runnable)
                .map(|(i, _)| i)
                .collect();
            if runnable.is_empty() {
                // Redelivery guarantee: a deferring schedule can delay or
                // reorder a message but never lose it — when nothing else
                // can run, the lowest matchable channel is force-paired.
                if let Some(ch) = self.matchable_channels().first().copied() {
                    self.schedule.on_forced_delivery(ch);
                    self.rendezvous(ch)?;
                    continue;
                }
                let blocked = self
                    .threads
                    .iter()
                    .any(|t| !matches!(t.status, ThreadStatus::Done(_)));
                if blocked {
                    return Err(RuntimeError::Deadlock);
                }
                return Ok(());
            }
            let tid = self.schedule.pick(&runnable);
            debug_assert!(runnable.contains(&tid), "schedule picked a blocked thread");
            let quantum = self.schedule.quantum().max(1);
            for _ in 0..quantum {
                if self.threads[tid].status != ThreadStatus::Runnable {
                    break;
                }
                self.step(tid)?;
                if self.stats.steps > self.config.max_steps {
                    return Err(RuntimeError::StepLimit(self.config.max_steps));
                }
                if let Some(fuel) = self.config.fuel {
                    if self.stats.steps > fuel {
                        return Err(RuntimeError::FuelExhausted(fuel));
                    }
                }
            }
        }
    }

    // -------------------------------------------------------- reservations

    fn check_reserved(
        &mut self,
        tid: usize,
        loc: ObjId,
        action: &'static str,
    ) -> Result<(), RuntimeError> {
        if !self.config.check_reservations {
            return Ok(());
        }
        self.stats.reservation_checks += 1;
        if self.threads[tid].reservation.contains(&loc) {
            Ok(())
        } else {
            self.stats.reservation_failures += 1;
            Err(RuntimeError::ReservationFault {
                thread: tid,
                loc,
                action,
            })
        }
    }

    fn reserve(&mut self, tid: usize, loc: ObjId) {
        if self.config.check_reservations {
            self.threads[tid].reservation.insert(loc);
        }
    }

    // -------------------------------------------------------------- stepping

    /// Executes one instruction of thread `tid`.
    pub fn step(&mut self, tid: usize) -> Result<(), RuntimeError> {
        self.stats.steps += 1;
        self.lanes[tid].steps += 1;
        let frame = self.threads[tid]
            .frames
            .last()
            .expect("runnable has frames");
        let func = frame.func;
        let pc = frame.pc;
        let inst = self.program.funcs[func].code[pc].clone();
        // Advance pc by default; jumps overwrite it.
        self.frame_mut(tid).pc = pc + 1;
        // Objects this step's heap mutation names (receiver, old/new field
        // values, fresh allocations): the seed set for partial sanitizer
        // walks. Only collected when a flow index can actually use it.
        let collect = self.config.sanitize_domination && self.flow.is_some();
        let mut touched: Vec<ObjId> = Vec::new();
        match inst {
            Inst::PushUnit => self.push(tid, Value::Unit),
            Inst::PushInt(n) => self.push(tid, Value::Int(n)),
            Inst::PushBool(b) => self.push(tid, Value::Bool(b)),
            Inst::PushNone => self.push(tid, Value::none()),
            Inst::PushSelf => self.push(tid, Value::Loc(ObjId::SELF_PLACEHOLDER)),
            Inst::Load(slot) => {
                let v = self.frame_mut(tid).locals[slot as usize].clone();
                if let Value::Loc(l) = &v {
                    if *l != ObjId::SELF_PLACEHOLDER {
                        self.check_reserved(tid, *l, "variable read")?;
                    }
                }
                self.push(tid, v);
            }
            Inst::Store(slot) => {
                let v = self.pop(tid);
                self.frame_mut(tid).locals[slot as usize] = v;
            }
            Inst::Pop => {
                self.pop(tid);
            }
            Inst::ReadField(idx) => {
                let obj = self.pop_loc(tid)?;
                self.check_reserved(tid, obj, "field read")?;
                self.stats.field_reads += 1;
                let v = self.heap.read_field(obj, idx as usize)?;
                self.push(tid, v);
            }
            Inst::WriteField(idx) => {
                let value = self.pop(tid);
                let obj = self.pop_loc(tid)?;
                self.check_reserved(tid, obj, "field write")?;
                self.stats.field_writes += 1;
                if collect {
                    touched.push(obj);
                    collect_locs(&value, &mut touched);
                }
                let old = self.heap.write_field(obj, idx as usize, value)?;
                if collect {
                    collect_locs(&old, &mut touched);
                }
                self.push(tid, Value::Unit);
            }
            Inst::TakeField(idx) => {
                let obj = self.pop_loc(tid)?;
                self.check_reserved(tid, obj, "destructive read")?;
                self.stats.field_reads += 1;
                self.stats.field_writes += 1;
                let old = self.heap.write_field(obj, idx as usize, Value::none())?;
                if collect {
                    touched.push(obj);
                    collect_locs(&old, &mut touched);
                }
                self.push(tid, old);
            }
            Inst::MakeSome => {
                let v = self.pop(tid);
                self.push(tid, Value::some(v));
            }
            Inst::IsNone => {
                let v = self.pop(tid);
                self.push(tid, Value::Bool(v.is_none()));
            }
            Inst::IsSome => {
                let v = self.pop(tid);
                self.push(tid, Value::Bool(!v.is_none()));
            }
            Inst::New { struct_id, argc } => {
                let frame = self.frame_mut(tid);
                let at = frame.stack.len() - argc as usize;
                let fields: Vec<Value> = frame.stack.split_off(at);
                if collect {
                    for v in &fields {
                        collect_locs(v, &mut touched);
                    }
                }
                let id = self.heap.alloc(struct_id as usize, fields);
                self.stats.allocs += 1;
                if collect {
                    touched.push(id);
                }
                self.reserve(tid, id);
                self.push(tid, Value::Loc(id));
            }
            Inst::Call(fid) => {
                let callee = &self.program.funcs[fid as usize];
                let n_params = callee.n_params;
                let n_locals = callee.n_locals;
                let frame = self.frame_mut(tid);
                let at = frame.stack.len() - n_params;
                let args: Vec<Value> = frame.stack.split_off(at);
                let mut locals = vec![Value::Unit; n_locals];
                locals[..n_params].clone_from_slice(&args);
                self.threads[tid].frames.push(Frame {
                    func: fid as usize,
                    pc: 0,
                    locals,
                    stack: Vec::new(),
                });
            }
            Inst::Ret => {
                let v = self.pop(tid);
                self.threads[tid].frames.pop();
                if self.threads[tid].frames.is_empty() {
                    self.threads[tid].status = ThreadStatus::Done(v);
                } else {
                    self.push(tid, v);
                }
            }
            Inst::Jump(target) => self.frame_mut(tid).pc = target as usize,
            Inst::JumpIfFalse(target) => {
                let v = self.pop(tid);
                if !v.expect_bool() {
                    self.frame_mut(tid).pc = target as usize;
                }
            }
            Inst::BranchNone(target) => {
                let v = self.pop(tid);
                match v {
                    Value::Maybe(Some(inner)) => self.push(tid, *inner),
                    Value::Maybe(None) => self.frame_mut(tid).pc = target as usize,
                    other => {
                        return Err(RuntimeError::TypeConfusion(format!("let some on {other}")))
                    }
                }
            }
            Inst::Binary(op) => {
                let rhs = self.pop(tid);
                let lhs = self.pop(tid);
                let out = self.binary(op, lhs, rhs)?;
                self.push(tid, out);
            }
            Inst::Unary(op) => {
                let v = self.pop(tid);
                let out = match op {
                    UnOp::Not => Value::Bool(!v.expect_bool()),
                    UnOp::Neg => Value::Int(v.expect_int().wrapping_neg()),
                };
                self.push(tid, out);
            }
            Inst::Send(ch) => {
                let v = self.pop(tid);
                // The send-step requires the live set within the sender's
                // reservation (Fig. 15).
                if self.config.check_reservations {
                    for l in self.heap.live_set(&v) {
                        self.check_reserved(tid, l, "send")?;
                    }
                }
                self.threads[tid].status = ThreadStatus::BlockedSend(ch, v);
                self.threads[tid].blocked_at = self.stats.steps;
                self.try_rendezvous(ch)?;
            }
            Inst::Recv(ch) => {
                self.threads[tid].status = ThreadStatus::BlockedRecv(ch);
                self.threads[tid].blocked_at = self.stats.steps;
                self.try_rendezvous(ch)?;
            }
            Inst::Disconnected => {
                let b = self.pop_loc(tid)?;
                let a = self.pop_loc(tid)?;
                self.check_reserved(tid, a, "disconnection check")?;
                self.check_reserved(tid, b, "disconnection check")?;
                self.stats.disconnect_checks += 1;
                let outcome = match self.config.strategy {
                    DisconnectStrategy::Efficient => {
                        efficient_disconnected(&self.heap, &self.program.table, a, b)
                    }
                    DisconnectStrategy::Naive => naive_disconnected(&self.heap, a, b),
                    DisconnectStrategy::Differential => {
                        // Soundness oracle (§5.2): the efficient check may
                        // conservatively answer "connected", but claiming
                        // "disconnected" against the reference semantics
                        // is a bug. Stats count only the efficient side so
                        // a differential run is stats-identical to an
                        // efficient one.
                        let eff = efficient_disconnected(&self.heap, &self.program.table, a, b);
                        let naive = naive_disconnected(&self.heap, a, b);
                        if eff.disconnected && !naive.disconnected {
                            return Err(RuntimeError::DisconnectDisagreement { a, b });
                        }
                        eff
                    }
                };
                self.stats.disconnect_visited += outcome.visited as u64;
                self.lanes[tid].disconnect_checks += 1;
                self.lanes[tid].disconnect_visited += outcome.visited as u64;
                if let Some(sink) = self.sink.as_mut() {
                    sink.event(
                        "disconnect",
                        &[
                            ("step", self.stats.steps),
                            ("machine", tid as u64),
                            ("visited", outcome.visited as u64),
                            ("disconnected", u64::from(outcome.disconnected)),
                        ],
                    );
                }
                self.push(tid, Value::Bool(outcome.disconnected));
            }
        }
        if self.config.sanitize_domination {
            let safety = match &self.flow {
                Some(index) => index.safety(func, pc),
                None => StepSafety::Unknown,
            };
            let outcome = match safety {
                StepSafety::Safe => {
                    self.stats.sanitize_skipped += 1;
                    self.lanes[tid].sanitize_skipped += 1;
                    Ok(0)
                }
                StepSafety::RegionLocal => {
                    self.stats.sanitize_partial_walks += 1;
                    self.lanes[tid].sanitize_partial_walks += 1;
                    crate::sanitize::check_domination_touched(&self.heap, &touched)
                }
                StepSafety::Unknown => {
                    self.stats.sanitize_walks += 1;
                    self.lanes[tid].sanitize_walks += 1;
                    crate::sanitize::check_domination(&self.heap)
                }
            };
            match outcome {
                Ok(edges) => {
                    self.stats.sanitize_checks += edges as u64;
                    self.lanes[tid].sanitize_edges += edges as u64;
                }
                Err(violation) => return Err(RuntimeError::DominationFault(Box::new(violation))),
            }
            // Differential oracle: the classified check passed; the full
            // walk must agree, or the static classification is unsound.
            if self.flow_crosscheck && safety != StepSafety::Unknown {
                if let Err(violation) = crate::sanitize::check_domination(&self.heap) {
                    return Err(RuntimeError::FlowUnsound {
                        safety: safety.as_str(),
                        violation: Box::new(violation),
                    });
                }
            }
        }
        Ok(())
    }

    /// Channels with at least one blocked sender *and* one blocked
    /// receiver, ascending (each is a deliverable rendezvous).
    fn matchable_channels(&self) -> Vec<u16> {
        let mut senders: Vec<u16> = Vec::new();
        let mut receivers: Vec<u16> = Vec::new();
        for t in &self.threads {
            match &t.status {
                ThreadStatus::BlockedSend(c, _) => senders.push(*c),
                ThreadStatus::BlockedRecv(c) => receivers.push(*c),
                _ => {}
            }
        }
        let mut out: Vec<u16> = senders
            .into_iter()
            .filter(|c| receivers.contains(c))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Delivers every pending rendezvous the schedule does not defer.
    /// Eager schedules (the defaults) never leave a matchable channel
    /// behind, so this is a no-op outside fault injection.
    fn deliver_pending(&mut self) -> Result<(), RuntimeError> {
        loop {
            let mut progressed = false;
            for ch in self.matchable_channels() {
                if !self.schedule.defer_delivery(ch) {
                    self.rendezvous(ch)?;
                    progressed = true;
                }
            }
            if !progressed {
                return Ok(());
            }
        }
    }

    /// Offers a rendezvous on `ch` to the schedule right after a thread
    /// blocked on it; the schedule may defer (delay/drop faults), in
    /// which case the pair is retried at the next decision point.
    fn try_rendezvous(&mut self, ch: u16) -> Result<(), RuntimeError> {
        if self.matchable_channels().contains(&ch) && !self.schedule.defer_delivery(ch) {
            self.rendezvous(ch)?;
        }
        Ok(())
    }

    /// Pairs one blocked sender with one blocked receiver on channel `ch`
    /// (rule EC3-Communication-Paired-Step). With several candidates on
    /// either end the schedule chooses the pairing (message reorder);
    /// the defaults take the lowest thread ids, matching the historical
    /// behavior.
    fn rendezvous(&mut self, ch: u16) -> Result<(), RuntimeError> {
        let senders: Vec<usize> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(&t.status, ThreadStatus::BlockedSend(c, _) if *c == ch))
            .map(|(i, _)| i)
            .collect();
        let receivers: Vec<usize> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(&t.status, ThreadStatus::BlockedRecv(c) if *c == ch))
            .map(|(i, _)| i)
            .collect();
        let (Some(_), Some(_)) = (senders.first(), receivers.first()) else {
            return Ok(());
        };
        let (s, r) = self.schedule.pick_pair(&senders, &receivers);
        debug_assert!(senders.contains(&s) && receivers.contains(&r));
        // Mailbox depth at delivery: every sender still blocked on this
        // channel, including the one about to be paired.
        let depth = senders.len() as u64;
        let ThreadStatus::BlockedSend(_, value) =
            std::mem::replace(&mut self.threads[s].status, ThreadStatus::Runnable)
        else {
            unreachable!()
        };
        // Transfer d_sep from the sender's reservation to the receiver's.
        if self.config.check_reservations {
            let d_sep = self.heap.live_set(&value);
            for l in &d_sep {
                self.threads[s].reservation.remove(l);
            }
            self.threads[r].reservation.extend(d_sep);
        }
        self.stats.sends += 1;
        self.stats.recvs += 1;
        self.stats.peak_mailbox_depth = self.stats.peak_mailbox_depth.max(depth);
        // Mailbox residence: scheduler steps the message waited between
        // the sender blocking and this delivery.
        let waited = self.stats.steps.saturating_sub(self.threads[s].blocked_at);
        self.lanes[s].sends += 1;
        self.lanes[r].recvs += 1;
        self.lanes[r].peak_mailbox_depth = self.lanes[r].peak_mailbox_depth.max(depth);
        self.lanes[r].mailbox_wait_steps += waited;
        if let Some(sink) = self.sink.as_mut() {
            sink.event(
                "message",
                &[
                    ("step", self.stats.steps),
                    ("channel", u64::from(ch)),
                    ("from", s as u64),
                    ("to", r as u64),
                    ("depth", depth),
                    ("waited", waited),
                ],
            );
        }
        // Sender's send(...) evaluates to unit; receiver's recv(...) to the
        // value.
        self.threads[s]
            .frames
            .last_mut()
            .expect("sender has frames")
            .stack
            .push(Value::Unit);
        self.threads[r].status = ThreadStatus::Runnable;
        self.threads[r]
            .frames
            .last_mut()
            .expect("receiver has frames")
            .stack
            .push(value);
        Ok(())
    }

    fn binary(&self, op: BinOp, lhs: Value, rhs: Value) -> Result<Value, RuntimeError> {
        use BinOp::*;
        Ok(match op {
            Add => Value::Int(lhs.expect_int().wrapping_add(rhs.expect_int())),
            Sub => Value::Int(lhs.expect_int().wrapping_sub(rhs.expect_int())),
            Mul => Value::Int(lhs.expect_int().wrapping_mul(rhs.expect_int())),
            Div => {
                let d = rhs.expect_int();
                if d == 0 {
                    return Err(RuntimeError::DivisionByZero);
                }
                Value::Int(lhs.expect_int().wrapping_div(d))
            }
            Rem => {
                let d = rhs.expect_int();
                if d == 0 {
                    return Err(RuntimeError::DivisionByZero);
                }
                Value::Int(lhs.expect_int().wrapping_rem(d))
            }
            Eq => Value::Bool(lhs == rhs),
            Ne => Value::Bool(lhs != rhs),
            Lt => Value::Bool(lhs.expect_int() < rhs.expect_int()),
            Le => Value::Bool(lhs.expect_int() <= rhs.expect_int()),
            Gt => Value::Bool(lhs.expect_int() > rhs.expect_int()),
            Ge => Value::Bool(lhs.expect_int() >= rhs.expect_int()),
            And => Value::Bool(lhs.expect_bool() && rhs.expect_bool()),
            Or => Value::Bool(lhs.expect_bool() || rhs.expect_bool()),
        })
    }

    fn frame_mut(&mut self, tid: usize) -> &mut Frame {
        self.threads[tid].frames.last_mut().expect("has frames")
    }

    fn push(&mut self, tid: usize, v: Value) {
        self.frame_mut(tid).stack.push(v);
    }

    fn pop(&mut self, tid: usize) -> Value {
        self.frame_mut(tid).stack.pop().expect("stack discipline")
    }

    fn pop_loc(&mut self, tid: usize) -> Result<ObjId, RuntimeError> {
        match self.pop(tid) {
            Value::Loc(l) => Ok(l),
            Value::Maybe(Some(inner)) => match *inner {
                Value::Loc(l) => Ok(l),
                other => Err(RuntimeError::TypeConfusion(format!(
                    "expected location, found {other}"
                ))),
            },
            Value::Maybe(None) => Err(RuntimeError::NoneUnwrap),
            other => Err(RuntimeError::TypeConfusion(format!(
                "expected location, found {other}"
            ))),
        }
    }
}

/// Collects every heap location a value names (seeing through `some`),
/// skipping the `self` placeholder.
fn collect_locs(v: &Value, out: &mut Vec<ObjId>) {
    match v {
        Value::Loc(l) if *l != ObjId::SELF_PLACEHOLDER => out.push(*l),
        Value::Maybe(Some(inner)) => collect_locs(inner, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fearless_syntax::parse_program;

    fn machine(src: &str) -> Machine {
        Machine::new(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn arithmetic_and_loops() {
        let mut m = machine(
            "def sum_to(n: int) : int {
               let acc = 0;
               while (n > 0) { acc = acc + n; n = n - 1 };
               acc
             }",
        );
        assert_eq!(
            m.call("sum_to", vec![Value::Int(10)]).unwrap(),
            Value::Int(55)
        );
    }

    #[test]
    fn recursion() {
        let mut m = machine(
            "def fib(n: int) : int {
               if (n < 2) { n } else { fib(n - 1) + fib(n - 2) }
             }",
        );
        assert_eq!(m.call("fib", vec![Value::Int(10)]).unwrap(), Value::Int(55));
    }

    #[test]
    fn structs_and_maybes() {
        let mut m = machine(
            "struct data { value: int }
             struct sll_node { iso payload : data; iso next : sll_node? }
             def build(n: int) : sll_node {
               let node = new sll_node(new data(n), none);
               while (n > 1) {
                 n = n - 1;
                 node = new sll_node(new data(n), some(node))
               };
               node
             }
             def sum(n: sll_node) : int {
               let total = n.payload.value;
               let rest = 0;
               let some(nx) = n.next in { rest = sum(nx); } else { rest = 0; };
               total + rest
             }
             def main(n: int) : int { sum(build(n)) }",
        );
        assert_eq!(m.call("main", vec![Value::Int(4)]).unwrap(), Value::Int(10));
    }

    #[test]
    fn send_recv_between_threads() {
        let mut m = machine(
            "struct data { value: int }
             def producer(n: int) : unit {
               while (n > 0) { send(new data(n)); n = n - 1 };
               unit
             }
             def consumer(n: int) : int {
               let acc = 0;
               while (n > 0) {
                 let d = recv(data);
                 acc = acc + d.value;
                 n = n - 1
               };
               acc
             }",
        );
        m.spawn("producer", vec![Value::Int(5)]).unwrap();
        let c = m.spawn("consumer", vec![Value::Int(5)]).unwrap();
        m.run().unwrap();
        assert_eq!(m.thread(c).result(), Some(&Value::Int(15)));
        assert_eq!(m.stats().sends, 5);
    }

    #[test]
    fn deadlock_detected() {
        let mut m = machine("struct data { value: int } def lonely() : data { recv(data) }");
        m.spawn("lonely", vec![]).unwrap();
        assert_eq!(m.run(), Err(RuntimeError::Deadlock));
    }

    #[test]
    fn reservation_transferred_on_send() {
        let mut m = machine(
            "struct data { value: int }
             def producer() : unit { send(new data(42)); unit }
             def consumer() : int { let d = recv(data); d.value }",
        );
        m.spawn("producer", vec![]).unwrap();
        let c = m.spawn("consumer", vec![]).unwrap();
        m.run().unwrap();
        assert_eq!(m.thread(c).result(), Some(&Value::Int(42)));
        // The consumer now holds the object.
        assert_eq!(m.thread(c).reservation().len(), 1);
        assert_eq!(m.thread(0).reservation().len(), 0);
    }

    #[test]
    fn reservation_fault_on_foreign_access() {
        // A hand-built ill-typed scenario: thread B receives a location id
        // via an out-of-band channel (here: we just spawn it with the raw
        // location), then touches an object it never received.
        let mut m = machine(
            "struct data { value: int }
             def make() : data { new data(1) }
             def reader(d: data) : int { d.value }",
        );
        let t0 = m.spawn("make", vec![]).unwrap();
        m.run().unwrap();
        let loc = m.thread(t0).result().unwrap().clone();
        // Spawn a thread with an empty reservation but the same location by
        // constructing the machine state adversarially: pass the loc as an
        // argument but strip the reservation afterwards via a fresh spawn
        // of a thread that never legitimately received it.
        let tid = m.spawn("reader", vec![loc.clone()]).unwrap();
        // Steal the reservation to simulate a race (thread t0 still "owns").
        m.threads[tid].reservation.clear();
        let err = m.run().unwrap_err();
        assert!(
            matches!(err, RuntimeError::ReservationFault { .. }),
            "{err}"
        );
        assert_eq!(m.stats().reservation_failures, 1);
    }

    #[test]
    fn stats_fields_are_exhaustive() {
        // Struct literal (no `..Default::default()`): adding a Stats field
        // without extending `fields()` breaks this test at compile time.
        let s = Stats {
            steps: 1,
            field_reads: 2,
            field_writes: 3,
            allocs: 4,
            sends: 5,
            recvs: 6,
            disconnect_checks: 7,
            disconnect_visited: 8,
            reservation_checks: 9,
            reservation_failures: 10,
            sanitize_checks: 11,
            sanitize_walks: 12,
            sanitize_skipped: 13,
            sanitize_partial_walks: 14,
            machines: 15,
            peak_mailbox_depth: 16,
        };
        let fields = s.fields();
        let names: std::collections::BTreeSet<&str> = fields.iter().map(|(n, _)| *n).collect();
        assert_eq!(names.len(), fields.len(), "duplicate field name");
        let sum: u64 = fields.iter().map(|(_, v)| *v).sum();
        assert_eq!(sum, (1..=16).sum::<u64>(), "a field is missing or repeated");
        let json = s.to_json();
        assert_eq!(json, s.to_json());
        assert!(json.contains("\"reservation_failures\": 10"), "{json}");
        assert!(json.contains("\"sanitize_walks\": 12"), "{json}");
        assert!(json.contains("\"sanitize_skipped\": 13"), "{json}");
        assert!(json.contains("\"sanitize_partial_walks\": 14"), "{json}");
    }

    #[test]
    fn sink_records_message_and_disconnect_events() {
        use fearless_trace::MemorySink;
        let mut m = machine(
            "struct data { value: int }
             def producer() : unit { send(new data(42)); unit }
             def consumer() : int { let d = recv(data); d.value }",
        );
        m.set_trace_sink(Box::new(MemorySink::new()));
        m.spawn("producer", vec![]).unwrap();
        m.spawn("consumer", vec![]).unwrap();
        m.run().unwrap();
        m.emit_stats();
        let sink = m
            .take_trace_sink()
            .unwrap()
            .into_any()
            .downcast::<MemorySink>()
            .unwrap();
        let events: Vec<&str> = sink.scopes()[0].events.iter().map(|e| e.name).collect();
        assert_eq!(events, vec!["message"]);
        assert_eq!(sink.totals()["sends"], 1);

        let mut m = machine(
            "struct data { value: int }
             def f() : int {
               let a = new data(1);
               let b = new data(2);
               if disconnected(a, b) { 1 } else { 2 }
             }",
        );
        m.set_trace_sink(Box::new(MemorySink::new()));
        assert_eq!(m.call("f", vec![]).unwrap(), Value::Int(1));
        let sink = m
            .take_trace_sink()
            .unwrap()
            .into_any()
            .downcast::<MemorySink>()
            .unwrap();
        let disconnects: Vec<_> = sink.scopes()[0]
            .events
            .iter()
            .filter(|e| e.name == "disconnect")
            .collect();
        assert_eq!(disconnects.len(), 1);
        assert!(disconnects[0].fields.contains(&("disconnected", 1)));
    }

    #[test]
    fn checks_disabled_skip_reservations() {
        let src = "struct data { value: int }
             def make() : data { new data(1) }";
        let p = parse_program(src).unwrap();
        let mut m = Machine::with_config(
            &p,
            MachineConfig {
                check_reservations: false,
                ..MachineConfig::default()
            },
        )
        .unwrap();
        m.call("make", vec![]).unwrap();
        assert_eq!(m.stats().reservation_checks, 0);
    }

    #[test]
    fn step_limit_guards_infinite_loops() {
        let src = "def forever() : unit { while (true) { unit }; unit }";
        let p = parse_program(src).unwrap();
        let mut m = Machine::with_config(
            &p,
            MachineConfig {
                max_steps: 10_000,
                ..MachineConfig::default()
            },
        )
        .unwrap();
        assert!(matches!(
            m.call("forever", vec![]),
            Err(RuntimeError::StepLimit(_))
        ));
    }

    #[test]
    fn sanitizer_catches_shared_iso_payload() {
        // Unchecked program that aliases one `data` through two iso fields;
        // the sanitizer faults on the first step that creates the second edge.
        let src = "struct data { value: int }
             struct sll_node { iso payload : data; iso next : sll_node? }
             def dup() : int {
               let d = new data(7);
               let a = new sll_node(d, none);
               let b = new sll_node(d, none);
               a.payload.value + b.payload.value
             }";
        let p = parse_program(src).unwrap();
        let mut m = Machine::with_config(
            &p,
            MachineConfig {
                sanitize_domination: true,
                ..MachineConfig::default()
            },
        )
        .unwrap();
        let err = m.call("dup", vec![]).unwrap_err();
        match err {
            RuntimeError::DominationFault(v) => {
                assert!(v.to_string().contains("not dominating"), "{v}");
            }
            other => panic!("expected DominationFault, got {other}"),
        }
    }

    #[test]
    fn sanitizer_clean_run_counts_checks() {
        let src = "struct data { value: int }
             struct sll_node { iso payload : data; iso next : sll_node? }
             def build(n: int) : sll_node {
               let node = new sll_node(new data(n), none);
               while (n > 1) {
                 n = n - 1;
                 node = new sll_node(new data(n), some(node))
               };
               node
             }";
        let p = parse_program(src).unwrap();
        let mut m = Machine::with_config(
            &p,
            MachineConfig {
                sanitize_domination: true,
                ..MachineConfig::default()
            },
        )
        .unwrap();
        m.call("build", vec![Value::Int(4)]).unwrap();
        assert!(m.stats().sanitize_checks > 0);

        // The same run with the sanitizer off never walks the heap.
        let mut off = Machine::new(&p).unwrap();
        off.call("build", vec![Value::Int(4)]).unwrap();
        assert_eq!(off.stats().sanitize_checks, 0);
    }

    /// Builds the all-`Safe`-except-heap-mutations index a correct flow
    /// analysis would produce for any program: `WriteField` verdicts come
    /// from `f(pc)`, `TakeField`/`New` are `RegionLocal`, everything else
    /// `Safe`.
    fn hand_index(p: &CompiledProgram, write_verdict: StepSafety) -> FlowIndex {
        FlowIndex::new(
            p.funcs
                .iter()
                .map(|f| {
                    f.code
                        .iter()
                        .map(|inst| match inst {
                            Inst::WriteField(_) => write_verdict,
                            Inst::TakeField(_) | Inst::New { .. } => StepSafety::RegionLocal,
                            _ => StepSafety::Safe,
                        })
                        .collect()
                })
                .collect(),
        )
    }

    #[test]
    fn flow_index_skips_and_partially_walks() {
        let src = "struct data { value: int }
             struct sll_node { iso payload : data; iso next : sll_node? }
             def build(n: int) : sll_node {
               let node = new sll_node(new data(n), none);
               while (n > 1) {
                 n = n - 1;
                 node = new sll_node(new data(n), some(node))
               };
               node
             }";
        let p = parse_program(src).unwrap();
        let mut m = Machine::with_config(
            &p,
            MachineConfig {
                sanitize_domination: true,
                ..MachineConfig::default()
            },
        )
        .unwrap();
        let index = hand_index(m.program(), StepSafety::Unknown);
        m.set_flow_index(index);
        m.set_flow_crosscheck(true);
        m.call("build", vec![Value::Int(6)]).unwrap();
        let s = *m.stats();
        assert!(s.sanitize_skipped > 0, "{s:?}");
        assert!(s.sanitize_partial_walks > 0, "{s:?}");
        assert!(
            s.sanitize_skipped + s.sanitize_partial_walks + s.sanitize_walks == s.steps,
            "{s:?}"
        );
    }

    #[test]
    fn flow_index_still_catches_violations_via_partial_walks() {
        // The unchecked aliasing program: the violating step is a `New`
        // (RegionLocal), so the partial walk alone must catch it.
        let src = "struct data { value: int }
             struct sll_node { iso payload : data; iso next : sll_node? }
             def dup() : int {
               let d = new data(7);
               let a = new sll_node(d, none);
               let b = new sll_node(d, none);
               a.payload.value + b.payload.value
             }";
        let p = parse_program(src).unwrap();
        let mut m = Machine::with_config(
            &p,
            MachineConfig {
                sanitize_domination: true,
                ..MachineConfig::default()
            },
        )
        .unwrap();
        let index = hand_index(m.program(), StepSafety::Unknown);
        m.set_flow_index(index);
        let err = m.call("dup", vec![]).unwrap_err();
        assert!(
            matches!(err, RuntimeError::DominationFault(_)),
            "partial walk must fault: {err}"
        );
        assert!(m.stats().sanitize_partial_walks > 0);
    }

    #[test]
    fn flow_crosscheck_reports_unsound_classification() {
        // An adversarial index that marks every step Safe: the sanitizer
        // skips everything, and the crosscheck oracle must flag the skip
        // that hid the violation.
        let src = "struct data { value: int }
             struct sll_node { iso payload : data; iso next : sll_node? }
             def dup() : int {
               let d = new data(7);
               let a = new sll_node(d, none);
               let b = new sll_node(d, none);
               a.payload.value + b.payload.value
             }";
        let p = parse_program(src).unwrap();
        let mut m = Machine::with_config(
            &p,
            MachineConfig {
                sanitize_domination: true,
                ..MachineConfig::default()
            },
        )
        .unwrap();
        let all_safe = FlowIndex::new(
            m.program()
                .funcs
                .iter()
                .map(|f| vec![StepSafety::Safe; f.code.len()])
                .collect(),
        );
        m.set_flow_index(all_safe);
        m.set_flow_crosscheck(true);
        let err = m.call("dup", vec![]).unwrap_err();
        assert!(matches!(err, RuntimeError::FlowUnsound { .. }), "{err}");
        assert!(err.to_string().contains("flow"), "{err}");
    }

    #[test]
    fn fuel_exhaustion_is_a_clean_error() {
        let src = "def forever() : unit { while (true) { unit }; unit }";
        let p = parse_program(src).unwrap();
        let mut m = Machine::with_config(
            &p,
            MachineConfig {
                fuel: Some(1_000),
                ..MachineConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            m.call("forever", vec![]),
            Err(RuntimeError::FuelExhausted(1_000))
        );
    }

    #[test]
    fn differential_strategy_matches_efficient_stats() {
        let src = "struct data { value: int }
             struct sll_node { iso payload : data; iso next : sll_node? }
             def f() : int {
               let a = new sll_node(new data(1), none);
               let b = new sll_node(new data(2), none);
               if disconnected(a, b) { 1 } else { 2 }
             }";
        let p = parse_program(src).unwrap();
        let run = |strategy| {
            let mut m = Machine::with_config(
                &p,
                MachineConfig {
                    strategy,
                    ..MachineConfig::default()
                },
            )
            .unwrap();
            let v = m.call("f", vec![]).unwrap();
            (v, *m.stats())
        };
        let (v_eff, s_eff) = run(DisconnectStrategy::Efficient);
        let (v_diff, s_diff) = run(DisconnectStrategy::Differential);
        assert_eq!(v_eff, v_diff);
        assert_eq!(s_eff, s_diff, "differential must be stats-transparent");
        assert!(s_diff.disconnect_checks > 0);
    }

    /// A schedule that always defers deliveries: messages still arrive
    /// (forced redelivery), so the run completes with identical results.
    struct AlwaysDefer {
        inner: crate::schedule::RoundRobin,
        forced: u64,
    }

    impl crate::schedule::Schedule for AlwaysDefer {
        fn pick(&mut self, runnable: &[usize]) -> usize {
            self.inner.pick(runnable)
        }
        fn defer_delivery(&mut self, _ch: u16) -> bool {
            true
        }
        fn on_forced_delivery(&mut self, _ch: u16) {
            self.forced += 1;
        }
    }

    #[test]
    fn deferred_deliveries_are_forced_not_lost() {
        let mut m = machine(
            "struct data { value: int }
             def producer(n: int) : unit {
               while (n > 0) { send(new data(n)); n = n - 1 };
               unit
             }
             def consumer(n: int) : int {
               let acc = 0;
               while (n > 0) {
                 let d = recv(data);
                 acc = acc + d.value;
                 n = n - 1
               };
               acc
             }",
        );
        m.set_schedule(Box::new(AlwaysDefer {
            inner: crate::schedule::RoundRobin::default(),
            forced: 0,
        }));
        m.spawn("producer", vec![Value::Int(5)]).unwrap();
        let c = m.spawn("consumer", vec![Value::Int(5)]).unwrap();
        m.run().unwrap();
        assert_eq!(m.thread(c).result(), Some(&Value::Int(15)));
        assert_eq!(m.stats().sends, 5, "every deferred message redelivered");
    }

    #[test]
    fn custom_schedules_with_same_seed_are_byte_identical() {
        let src = "struct data { value: int }
             def producer(n: int) : unit {
               while (n > 0) { send(new data(n)); n = n - 1 };
               unit
             }
             def consumer(n: int) : int {
               let acc = 0;
               while (n > 0) { let d = recv(data); acc = acc + d.value; n = n - 1 };
               acc
             }";
        let p = parse_program(src).unwrap();
        let run = |seed: u64| {
            let mut m = Machine::new(&p).unwrap();
            m.set_schedule(Box::new(crate::schedule::SeededRandom::new(seed)));
            m.spawn("producer", vec![Value::Int(8)]).unwrap();
            m.spawn("consumer", vec![Value::Int(8)]).unwrap();
            m.run().unwrap();
            m.stats().to_json()
        };
        assert_eq!(run(3), run(3), "same seed, same stats bytes");
    }

    #[test]
    fn circular_dll_with_self() {
        let mut m = machine(
            "struct data { value: int }
             struct dll_node { iso payload : data; next : dll_node; prev : dll_node }
             def mk(v: int) : dll_node { new dll_node(new data(v), self, self) }
             def check() : bool {
               let n = mk(7);
               n.next.prev.payload.value == 7
             }",
        );
        assert_eq!(m.call("check", vec![]).unwrap(), Value::Bool(true));
    }
}
