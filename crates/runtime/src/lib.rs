//! # fearless-runtime
//!
//! The operational half of the reproduction: a small-step abstract machine
//! implementing the semantics of §3.2 and §7 of *"A Flexible Type System
//! for Fearless Concurrency"* (PLDI 2022):
//!
//! * a shared heap with the *stored reference counts* of §5.2,
//! * per-thread **dynamic reservations** with pervasive access checks
//!   (erasable for well-typed programs, Theorems 6.1/6.2),
//! * the novel `if disconnected` primitive in both its naive reference
//!   semantics and the efficient interleaved-traversal implementation,
//! * blocking `send`/`recv` rendezvous that transfers reachable subgraphs
//!   between reservations (rule EC3, Fig. 15), and
//! * a deterministic, seedable scheduler for interleaving exploration.
//!
//! ## Example
//!
//! ```
//! use fearless_runtime::{Machine, Value};
//! use fearless_syntax::parse_program;
//!
//! let program = parse_program(
//!     "struct data { value: int }
//!      def roundtrip() : int { send(new data(7)); 0 }
//!      def receive() : int { recv(data).value }",
//! )?;
//! let mut machine = Machine::new(&program)?;
//! machine.spawn("roundtrip", vec![])?;
//! let consumer = machine.spawn("receive", vec![])?;
//! machine.run()?;
//! assert_eq!(machine.thread(consumer).result(), Some(&Value::Int(7)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod compile;
pub mod disconnect;
pub mod error;
pub mod flow;
pub mod heap;
pub mod ir;
pub mod lanes;
pub mod machine;
pub mod sanitize;
pub mod schedule;
pub mod value;

pub use compile::compile;
pub use disconnect::{
    efficient_disconnected, naive_disconnected, DisconnectOutcome, DisconnectStrategy,
};
pub use error::RuntimeError;
pub use flow::{FlowIndex, StepSafety};
pub use heap::{Heap, Object, StructLayout, TypeTable};
pub use ir::{CompiledFn, CompiledProgram, Inst};
pub use lanes::LaneStats;
pub use machine::{Machine, MachineConfig, Stats, Thread, ThreadStatus};
pub use sanitize::{check_domination, check_domination_touched, DominationViolation};
pub use schedule::{RoundRobin, Schedule, SeededRandom};
pub use value::{ObjId, Value};
