//! Run-time mutual-disconnection checks for `if disconnected` (§3.2, §5.2).
//!
//! Two implementations:
//!
//! * [`naive_disconnected`] — the reference semantics (E15A/E15B): full
//!   traversals of both reachable object graphs over *all* fields, testing
//!   intersection. Cost is linear in both graphs.
//! * [`efficient_disconnected`] — the paper's two-step §5.2 algorithm:
//!   interleaved traversals over non-`iso` edges only (tempered domination
//!   guarantees no first intersection point lies beyond an `iso` field),
//!   terminating as soon as the *smaller* graph is fully explored, then
//!   comparing the traversal reference counts against the stored reference
//!   counts. Conservative: it may report "connected" for graphs that are
//!   disjoint but still referenced from elsewhere in the region.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::heap::{Heap, TypeTable};
use crate::value::ObjId;

/// Which disconnection check the machine runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DisconnectStrategy {
    /// The efficient §5.2 check (default).
    #[default]
    Efficient,
    /// The naive full-traversal reference semantics.
    Naive,
    /// Run both and fault (`RuntimeError::DisconnectDisagreement`) when
    /// the efficient check claims "disconnected" against the reference
    /// semantics. The check's result and its `Stats` contribution are
    /// the efficient side's, so a differential run is observationally
    /// identical to an efficient one unless the oracle fires. Used by
    /// the chaos harness as a soundness oracle.
    Differential,
}

/// Outcome of a disconnection check, with the number of objects visited
/// (for experiment E3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DisconnectOutcome {
    /// Whether the reachable subgraphs were found disjoint.
    pub disconnected: bool,
    /// Objects visited by the check.
    pub visited: usize,
}

/// Reference semantics: full traversal over all fields of both graphs.
pub fn naive_disconnected(heap: &Heap, a: ObjId, b: ObjId) -> DisconnectOutcome {
    let reach = |root: ObjId| -> HashSet<ObjId> {
        let mut seen = HashSet::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            if let Ok(obj) = heap.get(id) {
                for v in &obj.fields {
                    if let Some(t) = v.as_loc() {
                        if !seen.contains(&t) {
                            stack.push(t);
                        }
                    }
                }
            }
        }
        seen
    };
    let ra = reach(a);
    let rb = reach(b);
    let visited = ra.len() + rb.len();
    DisconnectOutcome {
        disconnected: ra.is_disjoint(&rb),
        visited,
    }
}

struct Traversal {
    queue: VecDeque<ObjId>,
    seen: HashSet<ObjId>,
}

impl Traversal {
    fn new(root: ObjId) -> Self {
        let mut seen = HashSet::new();
        seen.insert(root);
        Traversal {
            queue: VecDeque::from([root]),
            seen,
        }
    }
}

/// The efficient §5.2 check.
///
/// Interleaves breadth-first traversals from `a` and `b` over non-`iso`
/// reference fields. Returns "connected" immediately on intersection.
/// When the smaller graph is exhausted, compares each of its objects'
/// traversal reference count (edge encounters during the traversal) with
/// the heap's stored reference count; any mismatch means an unexplored
/// external reference targets the smaller graph, so the check
/// conservatively answers "connected".
pub fn efficient_disconnected(
    heap: &Heap,
    table: &TypeTable,
    a: ObjId,
    b: ObjId,
) -> DisconnectOutcome {
    if a == b {
        return DisconnectOutcome {
            disconnected: false,
            visited: 1,
        };
    }
    let mut ta = Traversal::new(a);
    let mut tb = Traversal::new(b);
    // Traversal reference counts: edge encounters per target object, per
    // side.
    let mut counts_a: HashMap<ObjId, u32> = HashMap::new();
    let mut counts_b: HashMap<ObjId, u32> = HashMap::new();
    let mut visited = 0usize;

    loop {
        let a_active = !ta.queue.is_empty();
        let b_active = !tb.queue.is_empty();
        if !a_active || !b_active {
            // One side is exhausted: it is the smaller graph. Verify its
            // stored reference counts.
            let (finished, counts) = if !a_active {
                (&ta, &counts_a)
            } else {
                (&tb, &counts_b)
            };
            let closed = finished.seen.iter().all(|id| {
                let stored = heap.get(*id).map(|o| o.stored_refcount).unwrap_or(0);
                let traversed = counts.get(id).copied().unwrap_or(0);
                stored == traversed
            });
            return DisconnectOutcome {
                disconnected: closed,
                visited,
            };
        }
        if expand(heap, table, &mut ta, &tb.seen, &mut counts_a, &mut visited) {
            return DisconnectOutcome {
                disconnected: false,
                visited,
            };
        }
        if expand(heap, table, &mut tb, &ta.seen, &mut counts_b, &mut visited) {
            return DisconnectOutcome {
                disconnected: false,
                visited,
            };
        }
    }
}

/// Expands one object from `this`'s frontier; returns `true` on
/// intersection with the other side.
fn expand(
    heap: &Heap,
    table: &TypeTable,
    this: &mut Traversal,
    other_seen: &HashSet<ObjId>,
    counts: &mut HashMap<ObjId, u32>,
    visited: &mut usize,
) -> bool {
    let Some(id) = this.queue.pop_front() else {
        return false;
    };
    *visited += 1;
    let Ok(obj) = heap.get(id) else { return false };
    let layout = table.layout(obj.struct_id);
    for (i, v) in obj.fields.iter().enumerate() {
        if layout.iso[i] {
            continue; // iso edges leave the region (§5.2)
        }
        let Some(t) = v.as_loc() else { continue };
        *counts.entry(t).or_insert(0) += 1;
        if other_seen.contains(&t) {
            return true;
        }
        if this.seen.insert(t) {
            this.queue.push_back(t);
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use fearless_syntax::parse_program;

    fn setup() -> (TypeTable, Heap) {
        let p = parse_program(
            "struct data { value: int }
             struct dll_node { iso payload : data; next : dll_node; prev : dll_node }",
        )
        .unwrap();
        {
            let t = TypeTable::new(&p);
            let h = Heap::new(t.clone());
            (t, h)
        }
    }

    /// Builds a circular dll of length n; returns the node ids.
    fn circle(table: &TypeTable, heap: &mut Heap, n: usize) -> Vec<ObjId> {
        let data_id = table.id_of(&"data".into()).unwrap();
        let node_id = table.id_of(&"dll_node".into()).unwrap();
        let mut nodes = Vec::new();
        for i in 0..n {
            let p = heap.alloc(data_id, vec![Value::Int(i as i64)]);
            let node = heap.alloc(
                node_id,
                vec![
                    Value::Loc(p),
                    Value::Loc(ObjId::SELF_PLACEHOLDER),
                    Value::Loc(ObjId::SELF_PLACEHOLDER),
                ],
            );
            nodes.push(node);
        }
        // Link into a circle.
        for i in 0..n {
            let next = nodes[(i + 1) % n];
            let prev = nodes[(i + n - 1) % n];
            heap.write_field(nodes[i], 1, Value::Loc(next)).unwrap();
            heap.write_field(nodes[i], 2, Value::Loc(prev)).unwrap();
        }
        nodes
    }

    /// Excises the tail (last node) exactly like Fig. 5.
    fn excise_tail(_table: &TypeTable, heap: &mut Heap, nodes: &[ObjId]) -> (ObjId, ObjId) {
        let hd = nodes[0];
        let tail = *nodes.last().unwrap();
        let tail_prev = heap.read_field(tail, 2).unwrap().as_loc().unwrap();
        heap.write_field(tail_prev, 1, Value::Loc(hd)).unwrap();
        heap.write_field(hd, 2, Value::Loc(tail_prev)).unwrap();
        heap.write_field(tail, 1, Value::Loc(tail)).unwrap();
        heap.write_field(tail, 2, Value::Loc(tail)).unwrap();
        (tail, hd)
    }

    #[test]
    fn size_two_excision_is_disconnected() {
        let (table, mut heap) = setup();
        let nodes = circle(&table, &mut heap, 2);
        let (tail, hd) = excise_tail(&table, &mut heap, &nodes);
        assert!(naive_disconnected(&heap, tail, hd).disconnected);
        assert!(efficient_disconnected(&heap, &table, tail, hd).disconnected);
    }

    #[test]
    fn size_one_list_is_connected() {
        // Fig. 3/4: in a size-1 list, hd and hd.prev are the same object.
        let (table, mut heap) = setup();
        let nodes = circle(&table, &mut heap, 1);
        let hd = nodes[0];
        let out = efficient_disconnected(&heap, &table, hd, hd);
        assert!(!out.disconnected);
        assert!(!naive_disconnected(&heap, hd, hd).disconnected);
    }

    #[test]
    fn unrepaired_excision_is_connected() {
        // Omit the tail self-pointer repairs: tail still points into the
        // list, so the graphs intersect.
        let (table, mut heap) = setup();
        let nodes = circle(&table, &mut heap, 4);
        let hd = nodes[0];
        let tail = *nodes.last().unwrap();
        let tail_prev = heap.read_field(tail, 2).unwrap().as_loc().unwrap();
        heap.write_field(tail_prev, 1, Value::Loc(hd)).unwrap();
        heap.write_field(hd, 2, Value::Loc(tail_prev)).unwrap();
        // tail.next / tail.prev still point into the list.
        assert!(!efficient_disconnected(&heap, &table, tail, hd).disconnected);
        assert!(!naive_disconnected(&heap, tail, hd).disconnected);
    }

    #[test]
    fn efficient_visits_only_smaller_graph() {
        // Paper claim: the check terminates after the smaller graph; for a
        // tail detach the cost is O(1), not O(list length).
        let (table, mut heap) = setup();
        let nodes = circle(&table, &mut heap, 1024);
        let (tail, hd) = excise_tail(&table, &mut heap, &nodes);
        let out = efficient_disconnected(&heap, &table, tail, hd);
        assert!(out.disconnected);
        assert!(
            out.visited <= 4,
            "expected O(1) visits for tail detach, got {}",
            out.visited
        );
        let naive = naive_disconnected(&heap, tail, hd);
        assert!(naive.visited >= 1024);
    }

    #[test]
    fn stray_external_reference_makes_efficient_conservative() {
        // A third in-region object points at the detached tail: naive says
        // disconnected (tail unreachable from hd), efficient conservatively
        // says connected (stored refcount exceeds traversal count).
        let (table, mut heap) = setup();
        let nodes = circle(&table, &mut heap, 3);
        let (tail, hd) = excise_tail(&table, &mut heap, &nodes);
        // Stray: a separate node whose next points at tail.
        let data_id = table.id_of(&"data".into()).unwrap();
        let node_id = table.id_of(&"dll_node".into()).unwrap();
        let p = heap.alloc(data_id, vec![Value::Int(99)]);
        let stray = heap.alloc(
            node_id,
            vec![
                Value::Loc(p),
                Value::Loc(ObjId::SELF_PLACEHOLDER),
                Value::Loc(ObjId::SELF_PLACEHOLDER),
            ],
        );
        heap.write_field(stray, 1, Value::Loc(tail)).unwrap();
        let eff = efficient_disconnected(&heap, &table, tail, hd);
        let naive = naive_disconnected(&heap, tail, hd);
        assert!(naive.disconnected);
        assert!(!eff.disconnected, "efficient must be conservative");
    }

    #[test]
    fn efficient_never_claims_disconnected_when_connected() {
        // Soundness direction on assorted shapes.
        let (table, mut heap) = setup();
        for n in [1usize, 2, 3, 5, 8] {
            let nodes = circle(&table, &mut heap, n);
            let hd = nodes[0];
            let mid = nodes[n / 2];
            let eff = efficient_disconnected(&heap, &table, hd, mid);
            let naive = naive_disconnected(&heap, hd, mid);
            assert!(!naive.disconnected);
            assert!(!eff.disconnected);
        }
    }
}
