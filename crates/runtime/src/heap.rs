//! The shared heap: objects with per-field values and the *stored
//! reference counts* of §5.2 (inbound references held in non-`iso` fields,
//! updated only on field assignment).

use std::collections::HashMap;

use fearless_syntax::{Program, Symbol, Type};

use crate::error::RuntimeError;
use crate::value::{ObjId, Value};

/// Compact per-struct layout information.
#[derive(Debug, Clone)]
pub struct StructLayout {
    /// Struct name.
    pub name: Symbol,
    /// Field names in declaration order.
    pub field_names: Vec<Symbol>,
    /// Whether each field is `iso`.
    pub iso: Vec<bool>,
    /// Whether each field holds references (structs or maybes thereof).
    pub is_ref: Vec<bool>,
    /// Declared field types.
    pub field_tys: Vec<Type>,
}

impl StructLayout {
    /// Index of a field by name.
    pub fn field_index(&self, name: &Symbol) -> Option<usize> {
        self.field_names.iter().position(|f| f == name)
    }
}

/// Struct layout table derived from a program.
#[derive(Debug, Clone, Default)]
pub struct TypeTable {
    layouts: Vec<StructLayout>,
    by_name: HashMap<Symbol, usize>,
}

impl TypeTable {
    /// Builds the table from a parsed program.
    pub fn new(program: &Program) -> Self {
        let mut table = TypeTable::default();
        for s in &program.structs {
            let layout = StructLayout {
                name: s.name.clone(),
                field_names: s.fields.iter().map(|f| f.name.clone()).collect(),
                iso: s.fields.iter().map(|f| f.iso).collect(),
                is_ref: s.fields.iter().map(|f| f.ty.is_reference()).collect(),
                field_tys: s.fields.iter().map(|f| f.ty.clone()).collect(),
            };
            table.by_name.insert(s.name.clone(), table.layouts.len());
            table.layouts.push(layout);
        }
        table
    }

    /// Looks up a struct id by name.
    pub fn id_of(&self, name: &Symbol) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// The layout of struct id `id`.
    pub fn layout(&self, id: usize) -> &StructLayout {
        &self.layouts[id]
    }

    /// Number of structs.
    pub fn len(&self) -> usize {
        self.layouts.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.layouts.is_empty()
    }
}

/// A heap object: its struct id, field values, and its stored reference
/// count (inbound non-`iso` heap references).
#[derive(Debug, Clone)]
pub struct Object {
    /// Index into the [`TypeTable`].
    pub struct_id: usize,
    /// Field values in declaration order.
    pub fields: Vec<Value>,
    /// Stored reference count: number of non-`iso` heap fields (anywhere)
    /// currently containing a reference to this object. Maintained only on
    /// field assignment (§5.2) — never on variable assignment or calls.
    pub stored_refcount: u32,
}

/// The shared mutable heap.
#[derive(Debug, Default)]
pub struct Heap {
    objects: Vec<Option<Object>>,
    table: TypeTable,
}

impl Heap {
    /// Creates an empty heap over the given struct layouts.
    pub fn new(table: TypeTable) -> Self {
        Heap {
            objects: Vec::new(),
            table,
        }
    }

    /// The heap's struct layout table.
    pub fn table(&self) -> &TypeTable {
        &self.table
    }

    /// Number of allocated (live) objects.
    pub fn len(&self) -> usize {
        self.objects.iter().filter(|o| o.is_some()).count()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocates an object, returning its location. Field values that
    /// mention [`ObjId::SELF_PLACEHOLDER`] are patched to the new id, and
    /// stored refcounts of non-iso targets are incremented.
    pub fn alloc(&mut self, struct_id: usize, mut fields: Vec<Value>) -> ObjId {
        let id = ObjId(self.objects.len() as u32);
        for v in &mut fields {
            v.patch_self(id);
        }
        self.objects.push(Some(Object {
            struct_id,
            fields: fields.clone(),
            stored_refcount: 0,
        }));
        // Count the new object's own non-iso outbound references.
        let layout = self.table.layout(struct_id).clone();
        for (i, v) in fields.iter().enumerate() {
            if !layout.iso[i] {
                if let Some(target) = v.as_loc() {
                    self.bump(target, 1);
                }
            }
        }
        id
    }

    fn bump(&mut self, id: ObjId, delta: i32) {
        if let Some(Some(obj)) = self.objects.get_mut(id.0 as usize) {
            obj.stored_refcount = (obj.stored_refcount as i64 + delta as i64).max(0) as u32;
        }
    }

    /// Reads an object.
    pub fn get(&self, id: ObjId) -> Result<&Object, RuntimeError> {
        self.objects
            .get(id.0 as usize)
            .and_then(|o| o.as_ref())
            .ok_or(RuntimeError::InvalidLocation(id))
    }

    /// Reads a field value.
    pub fn read_field(&self, id: ObjId, field: usize) -> Result<Value, RuntimeError> {
        let obj = self.get(id)?;
        obj.fields
            .get(field)
            .cloned()
            .ok_or_else(|| RuntimeError::TypeConfusion(format!("field #{field} of {id}")))
    }

    /// Writes a field, maintaining stored reference counts for non-`iso`
    /// fields (§5.2: counts are updated *only* on field assignment).
    pub fn write_field(
        &mut self,
        id: ObjId,
        field: usize,
        value: Value,
    ) -> Result<Value, RuntimeError> {
        let obj = self.get(id)?;
        let struct_id = obj.struct_id;
        let iso = self.table.layout(struct_id).iso[field];
        let old = obj.fields[field].clone();
        if !iso {
            if let Some(old_target) = old.as_loc() {
                self.bump(old_target, -1);
            }
            if let Some(new_target) = value.as_loc() {
                self.bump(new_target, 1);
            }
        }
        let obj = self
            .objects
            .get_mut(id.0 as usize)
            .and_then(|o| o.as_mut())
            .ok_or(RuntimeError::InvalidLocation(id))?;
        obj.fields[field] = value;
        Ok(old)
    }

    /// The set of locations reachable from `root` (over *all* fields) —
    /// the `live-set` used by the paired send/recv step (Fig. 15).
    pub fn live_set(&self, root: &Value) -> Vec<ObjId> {
        let mut seen: Vec<ObjId> = Vec::new();
        let mut stack: Vec<ObjId> = root.as_loc().into_iter().collect();
        while let Some(id) = stack.pop() {
            if seen.contains(&id) {
                continue;
            }
            seen.push(id);
            if let Ok(obj) = self.get(id) {
                for v in &obj.fields {
                    if let Some(next) = v.as_loc() {
                        if !seen.contains(&next) {
                            stack.push(next);
                        }
                    }
                }
            }
        }
        seen
    }

    /// Iterates over live `(id, object)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ObjId, &Object)> {
        self.objects
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.as_ref().map(|obj| (ObjId(i as u32), obj)))
    }

    /// Total allocations ever made (monotone).
    pub fn allocations(&self) -> usize {
        self.objects.len()
    }

    /// Renders the live object graph in Graphviz DOT format: solid edges
    /// for non-`iso` (intra-region) references, bold edges for `iso`
    /// (region-boundary) references, with stored reference counts in the
    /// labels.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph heap {\n  node [shape=record];\n");
        for (id, obj) in self.iter() {
            let layout = self.table.layout(obj.struct_id);
            let _ = writeln!(
                out,
                "  n{} [label=\"{} {} | rc={}\"];",
                id.0, id, layout.name, obj.stored_refcount
            );
            for (i, v) in obj.fields.iter().enumerate() {
                if let Some(target) = v.as_loc() {
                    let style = if layout.iso[i] { "bold" } else { "solid" };
                    let _ = writeln!(
                        out,
                        "  n{} -> n{} [label=\"{}\", style={style}];",
                        id.0, target.0, layout.field_names[i]
                    );
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fearless_syntax::parse_program;

    fn table() -> TypeTable {
        let p = parse_program(
            "struct data { value: int }
             struct dll_node { iso payload : data; next : dll_node; prev : dll_node }",
        )
        .unwrap();
        TypeTable::new(&p)
    }

    #[test]
    fn alloc_with_self_patches_and_counts() {
        let table = table();
        let mut heap = Heap::new(table.clone());
        let data_id = table.id_of(&"data".into()).unwrap();
        let node_id = table.id_of(&"dll_node".into()).unwrap();
        let payload = heap.alloc(data_id, vec![Value::Int(7)]);
        // Size-1 circular list: next/prev are self-references.
        let node = heap.alloc(
            node_id,
            vec![
                Value::Loc(payload),
                Value::Loc(ObjId::SELF_PLACEHOLDER),
                Value::Loc(ObjId::SELF_PLACEHOLDER),
            ],
        );
        let obj = heap.get(node).unwrap();
        assert_eq!(obj.fields[1], Value::Loc(node));
        assert_eq!(obj.fields[2], Value::Loc(node));
        // Two self-references through non-iso fields.
        assert_eq!(obj.stored_refcount, 2);
        // The payload is referenced only through an iso field → count 0.
        assert_eq!(heap.get(payload).unwrap().stored_refcount, 0);
    }

    #[test]
    fn write_field_maintains_refcounts() {
        let table = table();
        let mut heap = Heap::new(table.clone());
        let data_id = table.id_of(&"data".into()).unwrap();
        let node_id = table.id_of(&"dll_node".into()).unwrap();
        let p1 = heap.alloc(data_id, vec![Value::Int(1)]);
        let a = heap.alloc(
            node_id,
            vec![
                Value::Loc(p1),
                Value::Loc(ObjId::SELF_PLACEHOLDER),
                Value::Loc(ObjId::SELF_PLACEHOLDER),
            ],
        );
        let p2 = heap.alloc(data_id, vec![Value::Int(2)]);
        let b = heap.alloc(
            node_id,
            vec![
                Value::Loc(p2),
                Value::Loc(ObjId::SELF_PLACEHOLDER),
                Value::Loc(ObjId::SELF_PLACEHOLDER),
            ],
        );
        // Link a.next = b (field 1, non-iso).
        heap.write_field(a, 1, Value::Loc(b)).unwrap();
        assert_eq!(heap.get(b).unwrap().stored_refcount, 3); // 2 self + 1 from a
        assert_eq!(heap.get(a).unwrap().stored_refcount, 1); // lost one self-ref
    }

    #[test]
    fn iso_writes_do_not_touch_refcounts() {
        let table = table();
        let mut heap = Heap::new(table.clone());
        let data_id = table.id_of(&"data".into()).unwrap();
        let node_id = table.id_of(&"dll_node".into()).unwrap();
        let p1 = heap.alloc(data_id, vec![Value::Int(1)]);
        let p2 = heap.alloc(data_id, vec![Value::Int(2)]);
        let n = heap.alloc(
            node_id,
            vec![
                Value::Loc(p1),
                Value::Loc(ObjId::SELF_PLACEHOLDER),
                Value::Loc(ObjId::SELF_PLACEHOLDER),
            ],
        );
        heap.write_field(n, 0, Value::Loc(p2)).unwrap();
        assert_eq!(heap.get(p1).unwrap().stored_refcount, 0);
        assert_eq!(heap.get(p2).unwrap().stored_refcount, 0);
    }

    #[test]
    fn to_dot_renders_edges() {
        let table = table();
        let mut heap = Heap::new(table.clone());
        let data_id = table.id_of(&"data".into()).unwrap();
        let node_id = table.id_of(&"dll_node".into()).unwrap();
        let p = heap.alloc(data_id, vec![Value::Int(1)]);
        let n = heap.alloc(
            node_id,
            vec![
                Value::Loc(p),
                Value::Loc(ObjId::SELF_PLACEHOLDER),
                Value::Loc(ObjId::SELF_PLACEHOLDER),
            ],
        );
        let dot = heap.to_dot();
        assert!(dot.contains("digraph heap"));
        assert!(dot.contains(&format!("n{} -> n{}", n.0, p.0)), "{dot}");
        assert!(dot.contains("style=bold"), "iso edge rendered bold: {dot}");
        assert!(dot.contains("style=solid"), "{dot}");
    }

    #[test]
    fn live_set_is_transitive() {
        let table = table();
        let mut heap = Heap::new(table.clone());
        let data_id = table.id_of(&"data".into()).unwrap();
        let node_id = table.id_of(&"dll_node".into()).unwrap();
        let p = heap.alloc(data_id, vec![Value::Int(1)]);
        let n = heap.alloc(
            node_id,
            vec![
                Value::Loc(p),
                Value::Loc(ObjId::SELF_PLACEHOLDER),
                Value::Loc(ObjId::SELF_PLACEHOLDER),
            ],
        );
        let mut live = heap.live_set(&Value::Loc(n));
        live.sort();
        assert_eq!(live, vec![p, n]);
        assert!(heap.live_set(&Value::Int(3)).is_empty());
    }
}
