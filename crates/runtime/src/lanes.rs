//! Per-machine telemetry lanes.
//!
//! The scheduler steps many "machines" (threads in the paper's §7
//! terminology); aggregate [`crate::Stats`] answers *how much* work the
//! run did, while a [`LaneStats`] per machine answers *who* did it —
//! which machine processed the messages, whose mailbox backed up, and
//! which machine paid for the domination-sanitizer walks. `fearlessc
//! report` renders these lanes as a top-style table, and the Perfetto
//! exporter in `fearless-obs` turns them into one timeline lane per
//! machine.
//!
//! Every counter is a deterministic work unit (no wall clock): two runs
//! of the same program under the same schedule produce byte-identical
//! lanes.

use fearless_trace::Json;

/// Telemetry counters for one machine (thread), all in deterministic
/// work units.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Instructions this machine executed.
    pub steps: u64,
    /// Messages this machine sent.
    pub sends: u64,
    /// Messages this machine received (processed).
    pub recvs: u64,
    /// Largest number of senders found blocked on a channel at the
    /// moment this machine completed a receive — its peak mailbox depth.
    pub peak_mailbox_depth: u64,
    /// Total scheduler steps messages spent blocked between the send
    /// and this machine's matching receive (mailbox residence).
    pub mailbox_wait_steps: u64,
    /// `if disconnected` checks this machine executed.
    pub disconnect_checks: u64,
    /// Objects visited by this machine's disconnection checks.
    pub disconnect_visited: u64,
    /// Full sanitizer heap walks attributed to this machine's steps.
    pub sanitize_walks: u64,
    /// Partial (touched-set) sanitizer walks attributed to this machine.
    pub sanitize_partial_walks: u64,
    /// Sanitizer walks skipped on this machine's statically `Safe` steps.
    pub sanitize_skipped: u64,
    /// `iso` edges checked by sanitizer walks on this machine's steps.
    pub sanitize_edges: u64,
}

impl LaneStats {
    /// Every counter as a `(name, value)` pair, in declaration order —
    /// the single source of truth for serialization and for the
    /// `report` table. A field added to the struct without extending
    /// this table fails the exhaustiveness test in `machine.rs` at
    /// compile time.
    pub fn fields(&self) -> [(&'static str, u64); 11] {
        [
            ("steps", self.steps),
            ("sends", self.sends),
            ("recvs", self.recvs),
            ("peak_mailbox_depth", self.peak_mailbox_depth),
            ("mailbox_wait_steps", self.mailbox_wait_steps),
            ("disconnect_checks", self.disconnect_checks),
            ("disconnect_visited", self.disconnect_visited),
            ("sanitize_walks", self.sanitize_walks),
            ("sanitize_partial_walks", self.sanitize_partial_walks),
            ("sanitize_skipped", self.sanitize_skipped),
            ("sanitize_edges", self.sanitize_edges),
        ]
    }

    /// The lane as a JSON object (declaration order, deterministic).
    pub fn to_json_value(&self) -> Json {
        Json::obj(self.fields().map(|(k, v)| (k, Json::U64(v))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_json_is_deterministic_and_exhaustive() {
        let lane = LaneStats {
            steps: 1,
            sends: 2,
            recvs: 3,
            peak_mailbox_depth: 4,
            mailbox_wait_steps: 5,
            disconnect_checks: 6,
            disconnect_visited: 7,
            sanitize_walks: 8,
            sanitize_partial_walks: 9,
            sanitize_skipped: 10,
            sanitize_edges: 11,
        };
        let json = lane.to_json_value().render();
        assert_eq!(json, lane.to_json_value().render());
        for (name, value) in lane.fields() {
            assert!(json.contains(&format!("\"{name}\": {value}")), "{json}");
        }
    }

    #[test]
    fn lane_fields_are_exhaustive() {
        // Full destructuring (no `..`): adding a LaneStats field without
        // deciding how it serializes fails to compile here.
        let LaneStats {
            steps,
            sends,
            recvs,
            peak_mailbox_depth,
            mailbox_wait_steps,
            disconnect_checks,
            disconnect_visited,
            sanitize_walks,
            sanitize_partial_walks,
            sanitize_skipped,
            sanitize_edges,
        } = LaneStats::default();
        let bound = [
            steps,
            sends,
            recvs,
            peak_mailbox_depth,
            mailbox_wait_steps,
            disconnect_checks,
            disconnect_visited,
            sanitize_walks,
            sanitize_partial_walks,
            sanitize_skipped,
            sanitize_edges,
        ];
        assert_eq!(bound.len(), LaneStats::default().fields().len());
    }
}
