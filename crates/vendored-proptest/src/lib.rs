//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds in environments with no access to crates.io, so
//! this crate provides the API surface the repo's property tests use:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`, integer-range
//! and regex-subset string strategies, `prop::collection::vec`,
//! `prop::option::of`, `prop::bool::ANY`, [`prop_oneof!`], [`Just`], and
//! the `prop_assert*` macros. Generation is randomized and deterministic
//! per test name; there is no shrinking — a failing case panics with the
//! generated values available in the assertion message.

use rand::{Rng as _, SeedableRng as _};

/// Runner configuration; only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The random source handed to strategies.
pub struct TestRng(rand::rngs::StdRng);

impl TestRng {
    /// Deterministic generator seeded from the test's name (FNV-1a).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(rand::rngs::StdRng::seed_from_u64(h))
    }
}

impl rand::Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among type-erased alternatives (built by
/// [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

// ---------------------------------------------------------------------------
// Regex-subset string strategies
// ---------------------------------------------------------------------------

/// The regex subset the string strategies understand: literals, escapes
/// (`\n`, `\t`, `\r`, `\\`, and `\<punct>` for a literal), character
/// classes with ranges (`[ -~\n]`), groups with alternation
/// (`(a|bc|[0-9]+)`), and the postfix operators `{m}`, `{m,n}`, `*`,
/// `+`, `?`.
enum Pattern {
    Seq(Vec<Pattern>),
    Alt(Vec<Pattern>),
    Class(Vec<char>),
    Lit(char),
    Rep(Box<Pattern>, usize, usize),
}

struct PatternParser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    src: &'a str,
}

impl<'a> PatternParser<'a> {
    fn new(src: &'a str) -> Self {
        PatternParser {
            chars: src.chars().peekable(),
            src,
        }
    }

    fn fail(&self, msg: &str) -> ! {
        panic!("unsupported regex pattern {:?}: {msg}", self.src)
    }

    fn escape(&mut self) -> char {
        match self.chars.next() {
            Some('n') => '\n',
            Some('t') => '\t',
            Some('r') => '\r',
            Some(c) => c,
            None => self.fail("dangling backslash"),
        }
    }

    fn alt(&mut self) -> Pattern {
        let mut branches = vec![self.seq()];
        while self.chars.peek() == Some(&'|') {
            self.chars.next();
            branches.push(self.seq());
        }
        if branches.len() == 1 {
            branches.pop().unwrap()
        } else {
            Pattern::Alt(branches)
        }
    }

    fn seq(&mut self) -> Pattern {
        let mut items = Vec::new();
        while let Some(&c) = self.chars.peek() {
            if c == ')' || c == '|' {
                break;
            }
            let atom = self.atom();
            items.push(self.postfix(atom));
        }
        Pattern::Seq(items)
    }

    fn atom(&mut self) -> Pattern {
        match self.chars.next() {
            Some('(') => {
                let inner = self.alt();
                if self.chars.next() != Some(')') {
                    self.fail("unclosed group");
                }
                inner
            }
            Some('[') => Pattern::Class(self.class()),
            Some('\\') => Pattern::Lit(self.escape()),
            Some(c @ ('*' | '+' | '?' | '{')) => {
                self.fail(&format!("postfix '{c}' with no preceding atom"))
            }
            Some(c) => Pattern::Lit(c),
            None => self.fail("empty atom"),
        }
    }

    fn class(&mut self) -> Vec<char> {
        let mut set = Vec::new();
        loop {
            let c = match self.chars.next() {
                Some(']') => return set,
                Some('\\') => self.escape(),
                Some(c) => c,
                None => self.fail("unclosed class"),
            };
            // A range `a-z` (a '-' right before ']' is a literal dash).
            if self.chars.peek() == Some(&'-') {
                let mut ahead = self.chars.clone();
                ahead.next();
                if ahead.peek().is_some_and(|&e| e != ']') {
                    self.chars.next();
                    let end = match self.chars.next() {
                        Some('\\') => self.escape(),
                        Some(e) => e,
                        None => self.fail("unclosed class range"),
                    };
                    set.extend(c..=end);
                    continue;
                }
            }
            set.push(c);
        }
    }

    fn postfix(&mut self, atom: Pattern) -> Pattern {
        match self.chars.peek() {
            Some('*') => {
                self.chars.next();
                Pattern::Rep(Box::new(atom), 0, 8)
            }
            Some('+') => {
                self.chars.next();
                Pattern::Rep(Box::new(atom), 1, 8)
            }
            Some('?') => {
                self.chars.next();
                Pattern::Rep(Box::new(atom), 0, 1)
            }
            Some('{') => {
                self.chars.next();
                let mut lo = String::new();
                let mut hi = String::new();
                let mut cur = &mut lo;
                loop {
                    match self.chars.next() {
                        Some('}') => break,
                        Some(',') => cur = &mut hi,
                        Some(d) if d.is_ascii_digit() => cur.push(d),
                        _ => self.fail("malformed {m,n}"),
                    }
                }
                let lo: usize = lo.parse().unwrap_or(0);
                let hi: usize = if hi.is_empty() {
                    lo
                } else {
                    hi.parse().unwrap_or(lo)
                };
                Pattern::Rep(Box::new(atom), lo, hi.max(lo))
            }
            _ => atom,
        }
    }
}

impl Pattern {
    fn emit(&self, rng: &mut TestRng, out: &mut String) {
        match self {
            Pattern::Lit(c) => out.push(*c),
            Pattern::Class(set) => {
                if !set.is_empty() {
                    out.push(set[rng.gen_range(0..set.len())]);
                }
            }
            Pattern::Seq(items) => {
                for item in items {
                    item.emit(rng, out);
                }
            }
            Pattern::Alt(branches) => {
                branches[rng.gen_range(0..branches.len())].emit(rng, out);
            }
            Pattern::Rep(inner, lo, hi) => {
                for _ in 0..rng.gen_range(*lo..=*hi) {
                    inner.emit(rng, out);
                }
            }
        }
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut parser = PatternParser::new(self);
        let pattern = parser.alt();
        if parser.chars.next().is_some() {
            parser.fail("trailing input after pattern");
        }
        let mut out = String::new();
        pattern.emit(rng, &mut out);
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

// ---------------------------------------------------------------------------
// The `prop` module tree
// ---------------------------------------------------------------------------

/// Combinator namespaces mirroring upstream `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use rand::Rng as _;

        /// Sizes acceptable as the length argument of [`vec()`].
        pub trait IntoSizeRange {
            /// Inclusive (lo, hi) bounds.
            fn bounds(self) -> (usize, usize);
        }

        impl IntoSizeRange for usize {
            fn bounds(self) -> (usize, usize) {
                (self, self)
            }
        }

        impl IntoSizeRange for core::ops::Range<usize> {
            fn bounds(self) -> (usize, usize) {
                assert!(self.start < self.end, "empty vec size range");
                (self.start, self.end - 1)
            }
        }

        impl IntoSizeRange for core::ops::RangeInclusive<usize> {
            fn bounds(self) -> (usize, usize) {
                (*self.start(), *self.end())
            }
        }

        /// A strategy for `Vec`s whose elements come from `element`.
        pub struct VecStrategy<S> {
            element: S,
            lo: usize,
            hi: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.gen_range(self.lo..=self.hi);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Vectors of `size` elements drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            let (lo, hi) = size.bounds();
            VecStrategy { element, lo, hi }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use crate::{Strategy, TestRng};
        use rand::Rng as _;

        /// A strategy for `Option`s (see [`of`]).
        pub struct OptionStrategy<S>(S);

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.gen::<bool>() {
                    Some(self.0.generate(rng))
                } else {
                    None
                }
            }
        }

        /// `None` or `Some` of the inner strategy, with equal probability.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }
    }

    /// `bool` strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};
        use rand::Rng as _;

        /// The strategy type of [`ANY`].
        #[derive(Clone, Copy, Debug)]
        pub struct Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.gen::<bool>()
            }
        }

        /// Uniformly random booleans.
        pub const ANY: Any = Any;
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( config = ($cfg:expr); ) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ( $($strat:expr),+ $(,)? ) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Asserts a condition inside a property (panics on failure; no
/// shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { ::std::assert!($($args)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { ::std::assert_eq!($($args)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { ::std::assert_ne!($($args)+) };
}

/// The names property tests import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{BoxedStrategy, Just, ProptestConfig, Strategy, TestRng, Union};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_ascii_class_with_escape() {
        let mut rng = TestRng::for_test("ascii");
        for _ in 0..200 {
            let s = "[ -~\\n]{0,20}".generate(&mut rng);
            assert!(s.len() <= 20);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn regex_alternation_and_postfix() {
        let mut rng = TestRng::for_test("alt");
        for _ in 0..200 {
            let s = "(ab|[0-9]+|x){1,3}".generate(&mut rng);
            assert!(!s.is_empty());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_digit() || c == 'a' || c == 'b' || c == 'x'));
        }
    }

    #[test]
    fn vec_and_option_sizes() {
        let mut rng = TestRng::for_test("vec");
        for _ in 0..200 {
            let v = prop::collection::vec(0usize..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
            let o = prop::option::of(0usize..3).generate(&mut rng);
            assert!(o.is_none() || o.unwrap() < 3);
        }
    }

    #[test]
    fn oneof_map_and_just() {
        #[derive(Clone, Debug, PartialEq)]
        enum Op {
            A(i64),
            B,
        }
        let strat = prop_oneof![(1i64..5).prop_map(Op::A), Just(Op::B)];
        let mut rng = TestRng::for_test("oneof");
        let mut saw_a = false;
        let mut saw_b = false;
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                Op::A(v) => {
                    assert!((1..5).contains(&v));
                    saw_a = true;
                }
                Op::B => saw_b = true,
            }
        }
        assert!(saw_a && saw_b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, tuples, and trailing commas.
        #[test]
        fn macro_smoke(
            n in 2usize..12,
            pair in (0usize..4, prop::bool::ANY),
            text in "[a-c]{1,4}",
        ) {
            prop_assert!((2..12).contains(&n));
            prop_assert!(pair.0 < 4);
            prop_assert!(!text.is_empty() && text.len() <= 4, "text={text}");
        }
    }
}
