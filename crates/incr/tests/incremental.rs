//! Integration tests for the incremental + parallel driver: cache
//! warmth and job count must never change reports, diagnostics, or
//! metrics bytes (the dedicated `cache` summary span excepted).

use fearless_core::CheckerOptions;
use fearless_incr::{check_units, counter_names, DiskCache};
use fearless_syntax::{parse_program, Program};
use fearless_trace::{MemorySink, Tracer};

fn corpus_units() -> Vec<(String, Program)> {
    fearless_corpus::all_entries()
        .iter()
        .map(|e| {
            (
                e.name.to_string(),
                parse_program(&e.source).expect("corpus entries parse"),
            )
        })
        .collect()
}

/// `(phase, name, counters)` of one span, with counters flattened.
type SpanRow = (String, String, Vec<(&'static str, u64)>);

/// Every non-`cache` span, for comparing trace content across runs that
/// legitimately differ in cache traffic.
fn check_spans(sink: &MemorySink) -> Vec<SpanRow> {
    sink.spans()
        .filter(|m| m.phase != "cache")
        .map(|m| {
            (
                m.phase.clone(),
                m.name.clone(),
                m.counters.iter().map(|(k, v)| (*k, *v)).collect(),
            )
        })
        .collect()
}

#[test]
fn warm_corpus_run_replays_cold_reports_exactly() {
    let units = corpus_units();
    let opts = CheckerOptions::default();
    let mut cache = DiskCache::ephemeral();
    let cold = check_units(&units, &opts, 1, Some(&mut cache), &mut Tracer::off());
    let warm = check_units(&units, &opts, 4, Some(&mut cache), &mut Tracer::off());

    assert_eq!(cold.stats.hits, 0);
    assert!(cold.stats.misses > 0);
    assert_eq!(warm.stats.misses, 0, "every function replays warm");
    assert_eq!(warm.stats.hits, cold.stats.misses);
    assert_eq!(warm.stats.invalidations, 0);

    assert_eq!(cold.units.len(), warm.units.len());
    for (c, w) in cold.units.iter().zip(&warm.units) {
        assert_eq!(c.label, w.label);
        assert_eq!(c.env_error, w.env_error);
        assert_eq!(c.functions.len(), w.functions.len());
        for (cf, wf) in c.functions.iter().zip(&w.functions) {
            assert_eq!(cf.name, wf.name);
            assert_eq!(cf.fingerprint, wf.fingerprint);
            assert_eq!(cf.outcome, wf.outcome, "outcome of `{}`", cf.name);
            assert!(!cf.cache_hit);
            assert!(wf.cache_hit);
        }
        assert_eq!(c.first_error(), w.first_error());
    }
}

#[test]
fn parallel_corpus_metrics_are_byte_identical_to_serial() {
    let units = corpus_units();
    let opts = CheckerOptions::default();
    let run = |jobs: usize| {
        let mut sink = MemorySink::new();
        check_units(&units, &opts, jobs, None, &mut Tracer::new(&mut sink));
        sink.to_json()
    };
    let serial = run(1);
    for jobs in [2, 4, 8] {
        assert_eq!(serial, run(jobs), "jobs={jobs} diverged from serial");
    }
}

#[test]
fn warm_check_spans_match_a_cacheless_cold_run() {
    let units = corpus_units();
    let opts = CheckerOptions::default();

    let mut bare_sink = MemorySink::new();
    check_units(&units, &opts, 1, None, &mut Tracer::new(&mut bare_sink));

    let mut cache = DiskCache::ephemeral();
    check_units(&units, &opts, 1, Some(&mut cache), &mut Tracer::off());
    let mut warm_sink = MemorySink::new();
    let warm = check_units(
        &units,
        &opts,
        1,
        Some(&mut cache),
        &mut Tracer::new(&mut warm_sink),
    );
    assert_eq!(warm.stats.misses, 0);

    // Replayed-from-cache spans carry exactly the counters a live check
    // emits; only the `cache` summary span distinguishes the traces.
    assert_eq!(check_spans(&bare_sink), check_spans(&warm_sink));
    assert!(warm_sink.spans().any(|m| m.phase == "cache"));
    assert!(!bare_sink.spans().any(|m| m.phase == "cache"));
}

#[test]
fn all_emitted_counters_are_internable() {
    // Every counter name a live `check` span can carry must survive the
    // String round-trip through the disk cache, or warm metrics would
    // silently drop it. Guards `counter_names::ALL` against additions to
    // `fearless_core::check::emit_check_metrics`.
    let units = corpus_units();
    let mut sink = MemorySink::new();
    check_units(
        &units,
        &CheckerOptions::default(),
        1,
        None,
        &mut Tracer::new(&mut sink),
    );
    let mut seen = 0usize;
    for m in sink.spans() {
        if m.phase != "check" {
            continue;
        }
        for k in m.counters.keys() {
            assert_eq!(
                counter_names::intern(k),
                Some(*k),
                "counter `{k}` missing from counter_names::ALL"
            );
            seen += 1;
        }
    }
    assert!(seen > 0, "corpus run emitted no counters at all");
}

#[test]
fn disk_cache_persists_across_driver_instances() {
    let dir =
        std::env::temp_dir().join(format!("fearless-incr-driver-disk-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let units = corpus_units();
    let opts = CheckerOptions::default();

    let mut cold_cache = DiskCache::load(&dir);
    let cold = check_units(&units, &opts, 2, Some(&mut cold_cache), &mut Tracer::off());
    cold_cache.save().expect("cache saves");
    drop(cold_cache);

    let mut warm_cache = DiskCache::load(&dir);
    assert!(!warm_cache.is_empty(), "entries round-trip through disk");
    let warm = check_units(&units, &opts, 2, Some(&mut warm_cache), &mut Tracer::off());
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(warm.stats.misses, 0);
    assert_eq!(warm.stats.hits, cold.stats.misses);
    for (c, w) in cold.units.iter().zip(&warm.units) {
        for (cf, wf) in c.functions.iter().zip(&w.functions) {
            assert_eq!(cf.outcome, wf.outcome, "`{}:{}`", c.label, cf.name);
        }
    }
}
