//! Property tests for fingerprint soundness — the load-bearing invariant
//! of the whole incremental layer. A fingerprint must change whenever an
//! edit can change a function's check outcome (body, own signature,
//! callee signature, reachable struct), must NOT change under
//! formatting, and an incremental run through a stale cache must agree
//! verdict-for-verdict with a cold `check_program`.

use proptest::prelude::*;

use fearless_core::{
    check_program, check_program_incremental, program_fingerprints, CheckCache, CheckerOptions,
};
use fearless_syntax::parse_program;
use std::collections::BTreeMap;

/// A small call-graph template: `caller` depends on `get` and `make`,
/// `add` stands alone, and `get`/`make` both reach `data`.
fn src(body_k: i64, get_pinned: bool, field: &str) -> String {
    let pinned = if get_pinned { "pinned d " } else { "" };
    format!(
        "struct data {{ {field}: int }}
         def make(v: int) : data {{ new data(v) }}
         def get(d: data) : int {pinned}{{ d.{field} }}
         def add(a: int, b: int) : int {{ a + b + {body_k} }}
         def caller(v: int) : int {{ get(make(v)) }}"
    )
}

fn fingerprints(source: &str) -> BTreeMap<String, String> {
    let program = parse_program(source).unwrap();
    program_fingerprints(&program, &CheckerOptions::default())
        .unwrap()
        .into_iter()
        .map(|(name, fp)| (name.to_string(), fp.to_hex()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Editing one function's body re-fingerprints that function and
    /// nothing else.
    #[test]
    fn body_edit_is_isolated(k in 0i64..1000, delta in 1i64..1000) {
        let a = fingerprints(&src(k, false, "value"));
        let b = fingerprints(&src(k + delta, false, "value"));
        prop_assert_ne!(&a["add"], &b["add"]);
        prop_assert_eq!(&a["make"], &b["make"]);
        prop_assert_eq!(&a["get"], &b["get"]);
        prop_assert_eq!(&a["caller"], &b["caller"]);
    }

    /// Editing a signature re-fingerprints the function AND its callers,
    /// but not unrelated functions.
    #[test]
    fn signature_edit_invalidates_callers(k in 0i64..1000) {
        let plain = fingerprints(&src(k, false, "value"));
        let pinned = fingerprints(&src(k, true, "value"));
        prop_assert_ne!(&plain["get"], &pinned["get"]);
        prop_assert_ne!(&plain["caller"], &pinned["caller"], "caller sees get's sig");
        prop_assert_eq!(&plain["make"], &pinned["make"]);
        prop_assert_eq!(&plain["add"], &pinned["add"]);
    }

    /// Editing a struct re-fingerprints every function that can reach it
    /// through its types or callees; a function touching no structs keeps
    /// its fingerprint.
    #[test]
    fn struct_edit_invalidates_reachers(k in 0i64..1000) {
        let a = fingerprints(&src(k, false, "value"));
        let b = fingerprints(&src(k, false, "payload"));
        prop_assert_ne!(&a["make"], &b["make"]);
        prop_assert_ne!(&a["get"], &b["get"]);
        prop_assert_ne!(&a["caller"], &b["caller"]);
        prop_assert_eq!(&a["add"], &b["add"], "add never touches data");
    }

    /// Formatting is invisible: extra whitespace moves every span but no
    /// fingerprint.
    #[test]
    fn formatting_is_invisible(k in 0i64..1000, pad in 1usize..40) {
        let source = src(k, false, "value");
        let reformatted = source.replace('\n', &format!("\n{}", " ".repeat(pad)));
        prop_assert_eq!(fingerprints(&source), fingerprints(&reformatted));
    }

    /// The end-to-end soundness property: re-checking a random sequence
    /// of program variants through ONE long-lived cache gives exactly the
    /// verdict a cold `check_program` gives on each variant — including
    /// the variants that fail to check (`get` loses its body's field).
    #[test]
    fn incremental_agrees_with_cold_check_everywhere(
        edits in prop::collection::vec((0i64..1000, prop::bool::ANY, 0usize..4), 1..12),
    ) {
        let opts = CheckerOptions::default();
        let mut cache = CheckCache::new();
        let mut last = None;
        for (k, pinned, field_pick) in edits {
            // field_pick 3 renames the struct field but NOT the body use,
            // producing a variant that must fail identically both ways.
            let field = ["value", "payload", "item"][field_pick.min(2)];
            let source = if field_pick == 3 {
                src(k, pinned, "value").replacen("value: int", "moved: int", 1)
            } else {
                src(k, pinned, field).to_string()
            };
            let program = parse_program(&source).unwrap();
            let cold = check_program(&program, &opts);
            let incr = check_program_incremental(&program, &opts, &mut cache);
            match (cold, incr) {
                (Ok(c), Ok(i)) => prop_assert_eq!(c.derivations, i.derivations),
                (Err(c), Err(i)) => prop_assert_eq!(c, i),
                (c, i) => prop_assert!(
                    false,
                    "verdicts diverged: cold ok={} incr ok={}",
                    c.is_ok(),
                    i.is_ok()
                ),
            }
            last = Some(program);
        }
        // Re-checking the final variant warm must answer every queried
        // function from the cache (on an erroring variant the failing
        // function's cached error short-circuits the rest).
        let program = last.unwrap();
        let before = cache.stats;
        let _ = check_program_incremental(&program, &opts, &mut cache);
        prop_assert!(cache.stats.hits > before.hits);
        prop_assert_eq!(cache.stats.misses, before.misses, "warm run must not re-derive");
    }
}
