//! Topological, batched scheduling of per-function check jobs.
//!
//! The original driver fanned every missed function out to the pool as
//! its own task. That is *correct* — the checker is signature-modular
//! (§4.4), so no task ever needs another task's result — but it scales
//! badly: at thousands of functions, per-task pool overhead (deque
//! locks, slot writes, steal scans) rivals the cost of checking a small
//! accessor, and the flat issue order ignores the call graph entirely.
//! This module replaces the flat fan-out with:
//!
//! * **Topological levels**: each unit's intra-unit call graph orders
//!   callees before callers. Level 0 holds functions with no scheduled
//!   in-unit callees; level k holds functions whose scheduled callees
//!   all sit in levels < k. Self-recursion is ignored; mutual recursion
//!   is collapsed by SCC condensation, so a cycle's members issue
//!   together and the cycle's callers still issue strictly after it.
//! * **Batching**: each level's jobs are chunked so the pool sees a few
//!   multi-function tasks instead of thousands of single-function ones.
//!   The batch size targets [`BATCHES_PER_WORKER`] batches per worker
//!   per level (capped at [`MAX_BATCH`]) so work stealing can still
//!   rebalance skew within a level.
//!
//! Levels order batch *issue*, they are not hard barriers: because
//! dependencies are soft under signature modularity, a worker may
//! legally start a caller while another worker still holds its callee.
//! Output bytes cannot tell the difference — the driver reassembles
//! outcomes and replays trace spans in definition order afterwards.
//! The levels also feed the deterministic [`cost_model`]: a
//! machine-independent parallel-speedup estimate that benches gate on
//! (see `docs/OBSERVABILITY.md`, BENCH_synth.json).

use fearless_syntax::ast::ExprKind;
use fearless_syntax::Program;
use std::collections::BTreeMap;

/// Target number of batches per worker within one level; more gives
/// stealing room, fewer amortizes pool overhead.
pub const BATCHES_PER_WORKER: usize = 4;

/// Hard cap on jobs per batch, so one batch never serializes a huge
/// level on a single worker.
pub const MAX_BATCH: usize = 32;

/// One pool task: a run of `(unit, function)` jobs from a single
/// topological level, in definition order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Batch {
    /// Topological level this batch was issued from.
    pub level: usize,
    /// The jobs, as `(unit index, function index)` pairs.
    pub jobs: Vec<(usize, usize)>,
}

/// Shape summary of a [`Schedule`], carried on
/// [`crate::CheckRun::schedule`] for benches and diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScheduleStats {
    /// Total jobs scheduled (= cache misses).
    pub jobs: usize,
    /// Number of topological levels.
    pub levels: usize,
    /// Number of batches issued to the pool.
    pub batches: usize,
    /// Intra-unit call edges between scheduled jobs (self-calls
    /// excluded, deduplicated).
    pub edges: usize,
    /// Jobs that sit in multi-function call cycles (issued together at
    /// their SCC's level).
    pub cyclic: usize,
}

/// A batched, topologically ordered issue plan for a set of misses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    /// Batches in issue order (level-major, then definition order).
    pub batches: Vec<Batch>,
    /// Shape summary.
    pub stats: ScheduleStats,
}

/// Plans the issue order for `misses` (pairs of unit index and function
/// index into `units`) on `workers` workers. Deterministic: the plan is
/// a pure function of its arguments.
pub fn plan(units: &[(String, Program)], misses: &[(usize, usize)], workers: usize) -> Schedule {
    let workers = workers.max(1);
    let mut stats = ScheduleStats {
        jobs: misses.len(),
        ..ScheduleStats::default()
    };

    // Group the missed function indices per unit.
    let mut by_unit: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for &(ui, fi) in misses {
        by_unit.entry(ui).or_default().push(fi);
    }

    // Level every unit's misses over its intra-unit call graph, then
    // merge into global levels.
    let mut levels: Vec<Vec<(usize, usize)>> = Vec::new();
    for (&ui, fis) in &by_unit {
        let program = &units[ui].1;
        let (unit_levels, edges, cyclic) = level_unit(program, fis);
        stats.edges += edges;
        stats.cyclic += cyclic;
        for (lvl, fis_at) in unit_levels.into_iter().enumerate() {
            if levels.len() <= lvl {
                levels.resize_with(lvl + 1, Vec::new);
            }
            levels[lvl].extend(fis_at.into_iter().map(|fi| (ui, fi)));
        }
    }
    // Units were visited in index order and levels extended in order,
    // but interleaving across units can break (ui, fi) order within a
    // level; restore it so batches read in definition order.
    for level in &mut levels {
        level.sort_unstable();
    }
    stats.levels = levels.len();

    // Chunk each level into batches.
    let mut batches = Vec::new();
    for (lvl, jobs_at) in levels.into_iter().enumerate() {
        let target = jobs_at.len().div_ceil(workers * BATCHES_PER_WORKER);
        let size = target.clamp(1, MAX_BATCH);
        for chunk in jobs_at.chunks(size) {
            batches.push(Batch {
                level: lvl,
                jobs: chunk.to_vec(),
            });
        }
    }
    stats.batches = batches.len();
    Schedule { batches, stats }
}

/// Levels one unit's missed functions over its intra-unit call graph.
/// Returns the levels (function indices, definition order within each),
/// the number of scheduled call edges, and how many jobs sit in
/// multi-function call cycles.
///
/// Cycles are handled by condensation: Tarjan's SCCs collapse each
/// mutual-recursion group to one node, the condensation (always a DAG)
/// is leveled callees-first, and a cyclic group's members issue
/// together at the level its callees allow — callers of the cycle
/// still issue strictly after it.
fn level_unit(program: &Program, fis: &[usize]) -> (Vec<Vec<usize>>, usize, usize) {
    // Map function names to indices, then collect each missed
    // function's callees that are themselves missed.
    let name_to_fi: BTreeMap<&str, usize> = program
        .funcs
        .iter()
        .enumerate()
        .map(|(fi, f)| (f.name.as_str(), fi))
        .collect();
    let scheduled: std::collections::BTreeSet<usize> = fis.iter().copied().collect();

    let mut callees: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let mut edges = 0;
    let mut nodes: Vec<usize> = fis.to_vec();
    nodes.sort_unstable();
    for &fi in &nodes {
        let mut targets = std::collections::BTreeSet::new();
        program.funcs[fi].body.walk(&mut |e| {
            if let ExprKind::Call(name, _) = &e.kind {
                if let Some(&fj) = name_to_fi.get(name.as_str()) {
                    if fj != fi && scheduled.contains(&fj) {
                        targets.insert(fj);
                    }
                }
            }
        });
        edges += targets.len();
        callees.insert(fi, targets.into_iter().collect());
    }

    // Tarjan's SCCs, iteratively (call-graph chains can be thousands
    // deep). Edges point caller → callee, so an SCC's callee SCCs are
    // always emitted before it.
    let mut index_of: BTreeMap<usize, usize> = BTreeMap::new();
    let mut low: BTreeMap<usize, usize> = BTreeMap::new();
    let mut on_stack: std::collections::BTreeSet<usize> = Default::default();
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut next_index = 0usize;
    for &root in &nodes {
        if index_of.contains_key(&root) {
            continue;
        }
        index_of.insert(root, next_index);
        low.insert(root, next_index);
        next_index += 1;
        stack.push(root);
        on_stack.insert(root);
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(frame) = frames.last_mut() {
            let (v, ci) = *frame;
            let succs = &callees[&v];
            if ci < succs.len() {
                frame.1 += 1;
                let w = succs[ci];
                if let std::collections::btree_map::Entry::Vacant(e) = index_of.entry(w) {
                    e.insert(next_index);
                    low.insert(w, next_index);
                    next_index += 1;
                    stack.push(w);
                    on_stack.insert(w);
                    frames.push((w, 0));
                } else if on_stack.contains(&w) {
                    let lw = index_of[&w];
                    low.insert(v, low[&v].min(lw));
                }
            } else {
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    let lv = low[&v];
                    low.insert(p, low[&p].min(lv));
                }
                if low[&v] == index_of[&v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("root still on stack");
                        on_stack.remove(&w);
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    sccs.push(scc);
                }
            }
        }
    }

    // Level the condensation: an SCC issues one level above its deepest
    // callee SCC. Emission order guarantees callee levels are known.
    let mut scc_of: BTreeMap<usize, usize> = BTreeMap::new();
    for (si, scc) in sccs.iter().enumerate() {
        for &v in scc {
            scc_of.insert(v, si);
        }
    }
    let mut cyclic = 0;
    let mut levels: Vec<Vec<usize>> = Vec::new();
    let mut scc_level = vec![0usize; sccs.len()];
    for (si, scc) in sccs.iter().enumerate() {
        let mut lvl = 0;
        for &v in scc {
            for &w in &callees[&v] {
                let sw = scc_of[&w];
                if sw != si {
                    lvl = lvl.max(scc_level[sw] + 1);
                }
            }
        }
        scc_level[si] = lvl;
        if scc.len() > 1 {
            cyclic += scc.len();
        }
        if levels.len() <= lvl {
            levels.resize_with(lvl + 1, Vec::new);
        }
        levels[lvl].extend_from_slice(scc);
    }
    for level in &mut levels {
        level.sort_unstable();
    }
    (levels, edges, cyclic)
}

/// Deterministic parallel cost model of a schedule.
///
/// `total_work` is the summed per-job cost; `makespan` is the simulated
/// completion time of greedy list scheduling (each batch goes to the
/// least-loaded worker, ties to the lowest index) with a barrier
/// between levels — a *conservative* estimate, since real issue has no
/// barriers. `speedup_x100` is `100 · total_work / makespan`.
///
/// With cost = measured derivation nodes per function, this yields a
/// machine-independent speedup figure that BENCH_synth.json gates on:
/// it captures exactly the two things the scheduler controls (balance
/// and batch granularity) while staying byte-reproducible on any
/// host — including single-core CI runners where wall-clock parallel
/// speedup is unmeasurable by construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CostModel {
    /// Summed cost over all jobs.
    pub total_work: u64,
    /// Simulated makespan on the given worker count.
    pub makespan: u64,
    /// `100 · total_work / makespan`, i.e. 200 ⇔ 2.00x.
    pub speedup_x100: u64,
}

/// Simulates `schedule` on `workers` workers, costing each job with
/// `cost` (use measured derivation nodes; anything ≥ 1 works).
pub fn cost_model(
    schedule: &Schedule,
    workers: usize,
    cost: &mut dyn FnMut(usize, usize) -> u64,
) -> CostModel {
    let workers = workers.max(1);
    let mut total_work = 0u64;
    let mut makespan = 0u64;
    let mut i = 0;
    let batches = &schedule.batches;
    while i < batches.len() {
        let level = batches[i].level;
        let mut loads = vec![0u64; workers];
        while i < batches.len() && batches[i].level == level {
            let c: u64 = batches[i]
                .jobs
                .iter()
                .map(|&(ui, fi)| cost(ui, fi).max(1))
                .sum();
            total_work += c;
            let w = (0..workers).min_by_key(|&w| loads[w]).unwrap_or(0);
            loads[w] += c;
            i += 1;
        }
        makespan += loads.iter().copied().max().unwrap_or(0);
    }
    let speedup_x100 = (total_work * 100).checked_div(makespan).unwrap_or(100);
    CostModel {
        total_work,
        makespan,
        speedup_x100,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fearless_syntax::parse_program;

    fn unit(src: &str) -> Vec<(String, Program)> {
        vec![(String::new(), parse_program(src).unwrap())]
    }

    fn all_misses(units: &[(String, Program)]) -> Vec<(usize, usize)> {
        units
            .iter()
            .enumerate()
            .flat_map(|(ui, (_, p))| (0..p.funcs.len()).map(move |fi| (ui, fi)))
            .collect()
    }

    const CHAIN: &str = "
        def a(x : int) : int { x + 1 }
        def b(x : int) : int { a(x) + 1 }
        def c(x : int) : int { b(x) + a(x) }
    ";

    #[test]
    fn chain_levels_are_topological() {
        let units = unit(CHAIN);
        let s = plan(&units, &all_misses(&units), 4);
        assert_eq!(s.stats.jobs, 3);
        assert_eq!(s.stats.levels, 3);
        assert_eq!(s.stats.edges, 3); // b→a, c→b, c→a
        assert_eq!(s.stats.cyclic, 0);
        // a at level 0, b at 1, c at 2.
        let level_of: Vec<(usize, usize)> = s
            .batches
            .iter()
            .flat_map(|b| b.jobs.iter().map(move |&j| (b.level, j.1)))
            .map(|(l, fi)| (fi, l))
            .collect();
        assert!(level_of.contains(&(0, 0)));
        assert!(level_of.contains(&(1, 1)));
        assert!(level_of.contains(&(2, 2)));
    }

    #[test]
    fn self_recursion_is_not_a_cycle() {
        let units = unit("def f(x : int) : int { if (x > 0) { f(x - 1) } else { 0 } }");
        let s = plan(&units, &all_misses(&units), 2);
        assert_eq!(s.stats.levels, 1);
        assert_eq!(s.stats.cyclic, 0);
        assert_eq!(s.stats.edges, 0);
    }

    #[test]
    fn mutual_recursion_lands_in_final_level() {
        let units = unit(
            "def even(x : int) : bool { if (x == 0) { true } else { odd(x - 1) } }
             def odd(x : int) : bool { if (x == 0) { false } else { even(x - 1) } }
             def top(x : int) : bool { even(x) }",
        );
        let s = plan(&units, &all_misses(&units), 2);
        // even/odd cycle first (unorderable), then top.
        assert_eq!(s.stats.cyclic, 2);
        let cycle_level = s
            .batches
            .iter()
            .find(|b| b.jobs.contains(&(0, 0)))
            .unwrap()
            .level;
        let top_level = s
            .batches
            .iter()
            .find(|b| b.jobs.contains(&(0, 2)))
            .unwrap()
            .level;
        assert!(top_level > cycle_level, "caller issues after the cycle");
    }

    #[test]
    fn partial_miss_set_only_links_scheduled_jobs() {
        let units = unit(CHAIN);
        // Only b and c missed: the b→a edge vanishes (a is cached), so
        // b is level 0 and c level 1.
        let s = plan(&units, &[(0, 1), (0, 2)], 2);
        assert_eq!(s.stats.jobs, 2);
        assert_eq!(s.stats.levels, 2);
        assert_eq!(s.stats.edges, 1);
    }

    #[test]
    fn batches_chunk_wide_levels() {
        // 100 independent functions on 2 workers: one level, chunked
        // into ceil(100 / (2*4)) = 13-job batches → 8 batches.
        let src: String = (0..100)
            .map(|i| format!("def f{i}(x : int) : int {{ x + {i} }}\n"))
            .collect();
        let units = unit(&src);
        let s = plan(&units, &all_misses(&units), 2);
        assert_eq!(s.stats.levels, 1);
        assert_eq!(s.stats.batches, 8);
        let total: usize = s.batches.iter().map(|b| b.jobs.len()).sum();
        assert_eq!(total, 100);
        // Definition order within the level.
        let flat: Vec<usize> = s
            .batches
            .iter()
            .flat_map(|b| b.jobs.iter().map(|j| j.1))
            .collect();
        let mut sorted = flat.clone();
        sorted.sort_unstable();
        assert_eq!(flat, sorted);
    }

    #[test]
    fn empty_plan_is_empty() {
        let units = unit(CHAIN);
        let s = plan(&units, &[], 4);
        assert_eq!(s, Schedule::default());
    }

    #[test]
    fn cost_model_balances_independent_work() {
        let src: String = (0..64)
            .map(|i| format!("def f{i}(x : int) : int {{ x + {i} }}\n"))
            .collect();
        let units = unit(&src);
        let s = plan(&units, &all_misses(&units), 4);
        let m = cost_model(&s, 4, &mut |_, _| 10);
        assert_eq!(m.total_work, 640);
        // 64 equal jobs on 4 workers: near-perfect balance.
        assert!(m.speedup_x100 >= 350, "got {}", m.speedup_x100);
    }

    #[test]
    fn cost_model_serial_is_1x() {
        let units = unit(CHAIN);
        let s = plan(&units, &all_misses(&units), 1);
        let m = cost_model(&s, 1, &mut |_, _| 7);
        assert_eq!(m.speedup_x100, 100);
        assert_eq!(m.total_work, m.makespan);
    }
}
