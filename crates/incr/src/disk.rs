//! The on-disk check cache (`fearlessc check --cache <dir>`).
//!
//! Layout: one deterministic JSON document, `check-cache.json`, inside
//! the cache directory (schema `fearless-incr-cache/1`). Entries are
//! content-addressed by [`Fingerprint`] hex and store the per-function
//! check *summary* — verdict, derivation shape, and the span counter
//! map — not the derivation itself: enough to replay `fearlessc check`'s
//! report, diagnostics, and `--metrics json` spans byte-for-byte without
//! re-deriving anything. A `names` table maps the last fingerprint seen
//! per qualified function name, which is what turns a content change
//! into a counted *invalidation*.
//!
//! The workspace is offline by design, so the file is rendered through
//! `fearless-trace`'s [`Json`] tree and read back by the minimal parser
//! in this module (exactly the subset that renderer emits). A missing or
//! unreadable file degrades to an empty cache, never an error.
//!
//! ## Crash safety
//!
//! The cache is a *cache*: it must survive any on-disk corruption —
//! truncation, bit flips, torn writes, schema drift — by silently
//! degrading to a cold start with byte-identical diagnostics. Two
//! mechanisms enforce that:
//!
//! * **Atomic save**: [`DiskCache::save`] writes a temp file in the
//!   cache directory and `rename`s it over `check-cache.json`, so a
//!   crash mid-save leaves either the old document or the new one,
//!   never a torn hybrid (a stray temp file is inert).
//! * **Content checksum**: the document embeds an FNV-1a 64 checksum of
//!   the canonical `{entries, names}` payload rendering. [`DiskCache::load`]
//!   re-renders the parsed payload and compares; any mismatch (or
//!   malformed JSON, or a schema-tag mismatch) discards the file and
//!   records a [`LoadOutcome::Recovered`] that drivers surface as the
//!   `cache_recoveries` stat and a `cache_recovery` trace event.
//! * **Advisory save lock**: long-lived processes (the `fearlessc
//!   serve` daemon) and batch invocations may share one cache
//!   directory. [`DiskCache::save`] takes a best-effort advisory lock
//!   (`check-cache.lock`, created with `O_EXCL`) so concurrent savers
//!   serialize instead of stampeding; a lock older than
//!   [`LOCK_STALE_SECS`] is presumed abandoned by a crashed holder and
//!   stolen. If the lock never frees, the save proceeds anyway —
//!   last-writer-wins is safe here because the atomic rename and the
//!   content checksum already guarantee every reader sees some
//!   complete, verified document; the lock only reduces wasted writes,
//!   it is not needed for correctness. The two-process drill in
//!   `fearless-chaos` (`run_concurrency_drill`) pins the contract:
//!   concurrent save/load cycles never observe a recovery.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use fearless_core::Fingerprint;
use fearless_trace::Json;

/// File name inside the cache directory.
pub const CACHE_FILE: &str = "check-cache.json";

/// Advisory lock file serializing concurrent savers.
pub const LOCK_FILE: &str = "check-cache.lock";

/// Age (seconds) past which a lock file is presumed abandoned by a
/// crashed holder and stolen.
pub const LOCK_STALE_SECS: u64 = 30;

/// Schema tag of the cache document.
pub const SCHEMA: &str = "fearless-incr-cache/1";

/// A held (or deliberately skipped) advisory save lock. Dropping a held
/// lock removes the lock file.
struct SaveLock {
    path: PathBuf,
    held: bool,
}

/// What the staleness check sampled about a lock file, used to
/// re-verify the steal: the holder's pid (the file content) and the
/// modification timestamp. A lock whose identity changed between the
/// staleness check and the steal belongs to a *new*, live holder and
/// must not be stolen.
#[derive(Clone, PartialEq, Eq, Debug)]
struct LockSample {
    pid: String,
    modified: Option<std::time::SystemTime>,
}

impl LockSample {
    fn read(path: &Path) -> Option<LockSample> {
        let pid = std::fs::read_to_string(path).ok()?;
        let modified = std::fs::metadata(path).and_then(|m| m.modified()).ok();
        Some(LockSample { pid, modified })
    }
}

impl SaveLock {
    /// Tries to create the lock file exclusively, retrying `retries`
    /// times with `wait_millis` sleeps and stealing locks older than
    /// `stale_secs`. Never fails: on timeout the returned guard is
    /// simply not held and the caller proceeds last-writer-wins.
    fn acquire(dir: &Path, retries: u32, wait_millis: u64, stale_secs: u64) -> SaveLock {
        let path = dir.join(LOCK_FILE);
        let mut attempts = 0u32;
        // Stealing a stale lock retries the create immediately and has
        // its own small budget, so it never eats the wait schedule.
        let mut steals = 3u32;
        loop {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    use std::io::Write as _;
                    let _ = write!(f, "{}", std::process::id());
                    return SaveLock { path, held: true };
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let sample = LockSample::read(&path);
                    let stale = sample
                        .as_ref()
                        .and_then(|s| s.modified)
                        .and_then(|t| t.elapsed().ok())
                        .is_some_and(|age| age.as_secs() >= stale_secs);
                    if stale && steals > 0 {
                        steals -= 1;
                        if let Some(sample) = sample {
                            let _ = try_steal(&path, &sample);
                        }
                        continue;
                    }
                    if attempts >= retries {
                        return SaveLock { path, held: false };
                    }
                    attempts += 1;
                    std::thread::sleep(std::time::Duration::from_millis(wait_millis));
                }
                // The directory vanished or permissions broke: the save
                // itself will surface that; don't hold anything.
                Err(_) => return SaveLock { path, held: false },
            }
        }
    }
}

/// Steals a lock previously sampled as stale, closing the TOCTOU window
/// between the staleness check and the `create_new` retry: the lock is
/// first *renamed* to a private claim name (atomic — only one stealer
/// can win the rename), then its pid/timestamp are re-verified against
/// the sample. If they no longer match, a fresh holder re-created the
/// lock in the window; the claim is moved back (best effort) and the
/// steal is abandoned. Returns whether the stale lock was removed.
fn try_steal(path: &Path, sampled: &LockSample) -> bool {
    let claim = path.with_extension(format!("steal.{}", std::process::id()));
    if std::fs::rename(path, &claim).is_err() {
        // Someone else stole (or released) it first.
        return false;
    }
    let current = LockSample::read(&claim);
    if current.as_ref() == Some(sampled) {
        // Same pid, same timestamp: this is the abandoned lock we
        // sampled. Delete the claim; `create_new` now has a clear path.
        let _ = std::fs::remove_file(&claim);
        return true;
    }
    // The lock changed hands between the staleness check and the
    // rename — it belongs to a live holder. Put it back unless an even
    // newer lock already took the name (then the claim is just dropped;
    // the displaced holder's release will be a harmless no-op).
    if !path.exists() {
        let _ = std::fs::rename(&claim, path);
    } else {
        let _ = std::fs::remove_file(&claim);
    }
    false
}

impl Drop for SaveLock {
    fn drop(&mut self) {
        if self.held {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// A cached per-function check outcome — the replayable summary of one
/// `check_fn` run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CachedOutcome {
    /// The function checked. Stores the derivation shape (for the check
    /// report) and the full span counter map (for metrics replay).
    Ok {
        /// Derivation nodes.
        nodes: u64,
        /// Virtual-transformation steps.
        vir_steps: u64,
        /// Backtracking-search states visited.
        search_nodes: u64,
        /// The `check` span's counters, keyed by counter name.
        counters: BTreeMap<String, u64>,
    },
    /// The function failed to check.
    Err {
        /// The checker's message (no function prefix; the driver
        /// re-attaches it).
        message: String,
        /// Span start byte.
        span_lo: u32,
        /// Span end byte.
        span_hi: u32,
    },
}

impl CachedOutcome {
    pub(crate) fn to_json(&self) -> Json {
        match self {
            CachedOutcome::Ok {
                nodes,
                vir_steps,
                search_nodes,
                counters,
            } => Json::obj([
                ("ok", Json::Bool(true)),
                ("nodes", Json::U64(*nodes)),
                ("vir_steps", Json::U64(*vir_steps)),
                ("search_nodes", Json::U64(*search_nodes)),
                (
                    "counters",
                    Json::Obj(
                        counters
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::U64(*v)))
                            .collect(),
                    ),
                ),
            ]),
            CachedOutcome::Err {
                message,
                span_lo,
                span_hi,
            } => Json::obj([
                ("ok", Json::Bool(false)),
                ("message", Json::str(message.clone())),
                ("span_lo", Json::U64(*span_lo as u64)),
                ("span_hi", Json::U64(*span_hi as u64)),
            ]),
        }
    }

    pub(crate) fn from_json(v: &Json) -> Option<CachedOutcome> {
        let fields = match v {
            Json::Obj(fields) => fields,
            _ => return None,
        };
        let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        match get("ok")? {
            Json::Bool(true) => {
                let mut counters = BTreeMap::new();
                if let Some(Json::Obj(cs)) = get("counters") {
                    for (k, v) in cs {
                        if let Json::U64(n) = v {
                            counters.insert(k.clone(), *n);
                        }
                    }
                }
                Some(CachedOutcome::Ok {
                    nodes: as_u64(get("nodes")?)?,
                    vir_steps: as_u64(get("vir_steps")?)?,
                    search_nodes: as_u64(get("search_nodes")?)?,
                    counters,
                })
            }
            Json::Bool(false) => Some(CachedOutcome::Err {
                message: as_str(get("message")?)?.to_string(),
                span_lo: as_u64(get("span_lo")?)? as u32,
                span_hi: as_u64(get("span_hi")?)? as u32,
            }),
            _ => None,
        }
    }
}

fn as_u64(v: &Json) -> Option<u64> {
    match v {
        Json::U64(n) => Some(*n),
        _ => None,
    }
}

fn as_str(v: &Json) -> Option<&str> {
    match v {
        Json::Str(s) => Some(s),
        _ => None,
    }
}

/// How a [`DiskCache::load`] went.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LoadOutcome {
    /// No persistent document existed (first run, or an ephemeral
    /// cache) — an ordinary cold start.
    #[default]
    Cold,
    /// The document parsed and its checksum verified; entries are live.
    Warm,
    /// A document existed but was unusable; the cache degraded to a
    /// cold start. The payload says why (for the trace event) — it
    /// never changes diagnostics.
    Recovered(&'static str),
}

/// FNV-1a 64 over `text`, in fixed-width lowercase hex — the content
/// checksum embedded in (and verified against) the cache document.
pub fn checksum_hex(text: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    format!("{h:016x}")
}

/// The persistent cache: content-addressed outcomes plus the name →
/// fingerprint table used for invalidation accounting.
#[derive(Debug, Default)]
pub struct DiskCache {
    dir: Option<PathBuf>,
    entries: BTreeMap<String, CachedOutcome>,
    names: BTreeMap<String, String>,
    load_outcome: LoadOutcome,
    /// When true, every mutation is mirrored into `dirty` as a WAL
    /// record (see [`crate::wal`]); drained by [`DiskCache::take_dirty`].
    log_dirty: bool,
    dirty: Vec<crate::wal::WalRecord>,
}

impl DiskCache {
    /// An in-memory cache that [`DiskCache::save`] will not persist
    /// (used by benchmarks and warm/cold comparisons inside one
    /// process).
    pub fn ephemeral() -> Self {
        DiskCache::default()
    }

    /// Loads the cache from `dir`, degrading to an empty cold-start
    /// cache on *any* read, parse, schema, or checksum failure (a cache
    /// must never turn into an error — the failure is recorded in
    /// [`DiskCache::load_outcome`] only).
    pub fn load(dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        let mut cache = DiskCache {
            dir: Some(dir.clone()),
            ..DiskCache::default()
        };
        let recovered = |mut cache: DiskCache, reason: &'static str| {
            cache.load_outcome = LoadOutcome::Recovered(reason);
            cache
        };
        let bytes = match std::fs::read(dir.join(CACHE_FILE)) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return cache,
            Err(_) => return recovered(cache, "unreadable"),
        };
        let Ok(text) = String::from_utf8(bytes) else {
            return recovered(cache, "invalid utf-8");
        };
        let Some(root) = parse_json(&text) else {
            return recovered(cache, "malformed json");
        };
        let Json::Obj(fields) = &root else {
            return recovered(cache, "malformed json");
        };
        let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        if get("schema").and_then(as_str) != Some(SCHEMA) {
            return recovered(cache, "schema mismatch");
        }
        let Some(stored_checksum) = get("checksum").and_then(as_str) else {
            return recovered(cache, "missing checksum");
        };
        let entries = get("entries").cloned().unwrap_or(Json::Obj(Vec::new()));
        let names = get("names").cloned().unwrap_or(Json::Obj(Vec::new()));
        // Re-render the parsed payload canonically; any content-altering
        // corruption (bit flip, truncation that still parses, torn
        // write) changes these bytes and fails the comparison.
        let payload = Json::obj([("entries", entries.clone()), ("names", names.clone())]).render();
        if checksum_hex(&payload) != stored_checksum {
            return recovered(cache, "checksum mismatch");
        }
        if let Json::Obj(entries) = &entries {
            for (fp, v) in entries {
                if Fingerprint::from_hex(fp).is_some() {
                    if let Some(outcome) = CachedOutcome::from_json(v) {
                        cache.entries.insert(fp.clone(), outcome);
                    }
                }
            }
        }
        if let Json::Obj(names) = &names {
            for (name, v) in names {
                if let Some(fp) = as_str(v) {
                    cache.names.insert(name.clone(), fp.to_string());
                }
            }
        }
        cache.load_outcome = LoadOutcome::Warm;
        cache
    }

    /// How the load went (checksum-verified, cold, or recovered from a
    /// corrupt document).
    pub fn load_outcome(&self) -> LoadOutcome {
        self.load_outcome
    }

    /// The recovery reason, when the persistent document existed but
    /// was discarded as corrupt.
    pub fn recovered_reason(&self) -> Option<&'static str> {
        match self.load_outcome {
            LoadOutcome::Recovered(reason) => Some(reason),
            _ => None,
        }
    }

    /// Like [`DiskCache::recovered_reason`], but one-shot: the marker is
    /// cleared so a driver running several batches over one cache counts
    /// the recovery exactly once.
    pub fn take_recovered_reason(&mut self) -> Option<&'static str> {
        let reason = self.recovered_reason();
        if reason.is_some() {
            self.load_outcome = LoadOutcome::Cold;
        }
        reason
    }

    /// Number of stored outcomes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no outcomes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a cached outcome by fingerprint.
    pub fn lookup(&self, fp: Fingerprint) -> Option<&CachedOutcome> {
        self.entries.get(&fp.to_hex())
    }

    /// Stores an outcome under `fp`.
    pub fn insert(&mut self, fp: Fingerprint, outcome: CachedOutcome) {
        let hex = fp.to_hex();
        if self.log_dirty {
            self.dirty.push(crate::wal::WalRecord::Entry {
                fp: hex.clone(),
                outcome: outcome.clone(),
            });
        }
        self.entries.insert(hex, outcome);
    }

    /// Records the fingerprint now current for a qualified function
    /// name, returning `true` when this *changed* an existing record (an
    /// invalidation).
    pub fn note_name(&mut self, qualified: &str, fp: Fingerprint) -> bool {
        let hex = fp.to_hex();
        let prev = self.names.get(qualified);
        let invalidated = prev.is_some_and(|prev| prev != &hex);
        // Only *moves* (new name, or a fingerprint change) are logged:
        // re-noting a stable name on every warm hit would grow the WAL
        // without changing the recoverable state.
        if self.log_dirty && prev != Some(&hex) {
            self.dirty.push(crate::wal::WalRecord::Name {
                name: qualified.to_string(),
                fp: hex.clone(),
            });
        }
        self.names.insert(qualified.to_string(), hex);
        invalidated
    }

    /// Turns on the dirty log: from now on every [`DiskCache::insert`]
    /// and name move is mirrored as a [`crate::wal::WalRecord`] for a
    /// write-ahead journal, retrievable via [`DiskCache::take_dirty`].
    pub fn enable_dirty_log(&mut self) {
        self.log_dirty = true;
    }

    /// Drains the WAL records accumulated since the last call.
    pub fn take_dirty(&mut self) -> Vec<crate::wal::WalRecord> {
        std::mem::take(&mut self.dirty)
    }

    /// Applies replayed WAL records directly (bypassing the dirty log),
    /// returning how many actually changed the cache. Records with
    /// malformed fingerprints are skipped — replay must degrade, never
    /// error.
    pub fn apply_wal(&mut self, records: &[crate::wal::WalRecord]) -> usize {
        let mut applied = 0usize;
        for rec in records {
            match rec {
                crate::wal::WalRecord::Entry { fp, outcome } => {
                    if Fingerprint::from_hex(fp).is_none() {
                        continue;
                    }
                    if self.entries.get(fp) != Some(outcome) {
                        self.entries.insert(fp.clone(), outcome.clone());
                        applied += 1;
                    }
                }
                crate::wal::WalRecord::Name { name, fp } => {
                    if Fingerprint::from_hex(fp).is_none() {
                        continue;
                    }
                    if self.names.get(name) != Some(fp) {
                        self.names.insert(name.clone(), fp.clone());
                        applied += 1;
                    }
                }
            }
        }
        applied
    }

    /// The canonical `{entries, names}` payload rendering the checksum
    /// covers.
    fn payload_json(&self) -> (Json, Json) {
        let entries = Json::Obj(
            self.entries
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        );
        let names = Json::Obj(
            self.names
                .iter()
                .map(|(k, v)| (k.clone(), Json::str(v.clone())))
                .collect(),
        );
        (entries, names)
    }

    /// Renders the cache document (deterministic bytes, embedded
    /// content checksum).
    pub fn to_json(&self) -> String {
        let (entries, names) = self.payload_json();
        let payload = Json::obj([("entries", entries.clone()), ("names", names.clone())]).render();
        Json::obj([
            ("schema", Json::str(SCHEMA)),
            ("checksum", Json::str(checksum_hex(&payload))),
            ("entries", entries),
            ("names", names),
        ])
        .render()
    }

    /// Writes the cache back to its directory (creating it if needed).
    /// Ephemeral caches are a no-op.
    ///
    /// The write is atomic: the document lands in a temp file first and
    /// is `rename`d over [`CACHE_FILE`], so a crash mid-save leaves
    /// either the previous document or the new one, never a torn
    /// hybrid.
    ///
    /// # Errors
    ///
    /// Returns a message when the directory or file cannot be written.
    pub fn save(&self) -> Result<(), String> {
        let Some(dir) = &self.dir else {
            return Ok(());
        };
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create cache dir `{}`: {e}", dir.display()))?;
        // Serialize concurrent savers (daemon + batch invocations over
        // one directory); on timeout proceed last-writer-wins — the
        // atomic rename plus checksum keep every reader safe.
        let _lock = SaveLock::acquire(dir, 100, 5, LOCK_STALE_SECS);
        let path = dir.join(CACHE_FILE);
        let tmp = dir.join(format!(
            "{CACHE_FILE}.tmp.{}.{:x}",
            std::process::id(),
            std::ptr::from_ref(self) as usize
        ));
        std::fs::write(&tmp, self.to_json())
            .map_err(|e| format!("cannot write cache temp `{}`: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            format!("cannot commit cache `{}`: {e}", path.display())
        })
    }

    /// The backing directory, if persistent.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }
}

///// Parses the JSON subset `fearless_trace::Json::render` emits (objects,
/// arrays, strings with the renderer's escapes, unsigned integers,
/// booleans, null). Returns `None` on any malformed input.
pub fn parse_json(text: &str) -> Option<Json> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Some(v)
    } else {
        None
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r' | b',') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Option<Json> {
    skip_ws(b, pos);
    match *b.get(*pos)? {
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            loop {
                skip_ws(b, pos);
                match *b.get(*pos)? {
                    b'}' => {
                        *pos += 1;
                        return Some(Json::Obj(fields));
                    }
                    b'"' => {
                        let key = parse_string(b, pos)?;
                        skip_ws(b, pos);
                        if *b.get(*pos)? != b':' {
                            return None;
                        }
                        *pos += 1;
                        let value = parse_value(b, pos)?;
                        fields.push((key, value));
                    }
                    _ => return None,
                }
            }
        }
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            loop {
                skip_ws(b, pos);
                if *b.get(*pos)? == b']' {
                    *pos += 1;
                    return Some(Json::Arr(items));
                }
                items.push(parse_value(b, pos)?);
            }
        }
        b'"' => parse_string(b, pos).map(Json::Str),
        b't' => {
            if b[*pos..].starts_with(b"true") {
                *pos += 4;
                Some(Json::Bool(true))
            } else {
                None
            }
        }
        b'f' => {
            if b[*pos..].starts_with(b"false") {
                *pos += 5;
                Some(Json::Bool(false))
            } else {
                None
            }
        }
        b'n' => {
            if b[*pos..].starts_with(b"null") {
                *pos += 4;
                Some(Json::Null)
            } else {
                None
            }
        }
        b'0'..=b'9' => {
            let start = *pos;
            while *pos < b.len() && b[*pos].is_ascii_digit() {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()?
                .parse::<u64>()
                .ok()
                .map(Json::U64)
        }
        _ => None,
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Option<String> {
    if *b.get(*pos)? != b'"' {
        return None;
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match *b.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match *b.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = b.get(*pos + 1..*pos + 5)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // Copy one UTF-8 scalar (the renderer leaves non-ASCII
                // unescaped).
                let rest = std::str::from_utf8(&b[*pos..]).ok()?;
                let c = rest.chars().next()?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DiskCache {
        let mut c = DiskCache::ephemeral();
        let fp = Fingerprint::from_hex("00000000000000000000000000000abc").unwrap();
        let mut counters = BTreeMap::new();
        counters.insert("check.deriv_nodes".to_string(), 7);
        counters.insert("vir.focus".to_string(), 2);
        c.insert(
            fp,
            CachedOutcome::Ok {
                nodes: 7,
                vir_steps: 2,
                search_nodes: 0,
                counters,
            },
        );
        let fp2 = Fingerprint::from_hex("00000000000000000000000000000def").unwrap();
        c.insert(
            fp2,
            CachedOutcome::Err {
                message: "cannot \"unify\"\nbranches".to_string(),
                span_lo: 3,
                span_hi: 9,
            },
        );
        c.note_name("prog/f", fp);
        c.note_name("prog/g", fp2);
        c
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let c = sample();
        let text = c.to_json();
        let parsed = parse_json(&text).expect("parses");
        // Re-render: byte identity proves the parser inverted the
        // renderer exactly.
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = std::env::temp_dir().join(format!("fearless-incr-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = sample();
        c.dir = Some(dir.clone());
        c.save().unwrap();
        let loaded = DiskCache::load(&dir);
        assert_eq!(loaded.to_json(), c.to_json());
        let fp = Fingerprint::from_hex("00000000000000000000000000000abc").unwrap();
        assert!(matches!(
            loaded.lookup(fp),
            Some(CachedOutcome::Ok { nodes: 7, .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_or_corrupt_degrades_to_empty() {
        let dir =
            std::env::temp_dir().join(format!("fearless-incr-missing-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        assert!(DiskCache::load(&dir).is_empty());
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(CACHE_FILE), "{ not json").unwrap();
        assert!(DiskCache::load(&dir).is_empty());
        std::fs::write(
            dir.join(CACHE_FILE),
            "{\n  \"schema\": \"some-other/9\",\n  \"entries\": {}\n}\n",
        )
        .unwrap();
        assert!(DiskCache::load(&dir).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Writes `c` into a fresh temp dir and returns the dir.
    fn saved_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fearless-incr-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut c = sample();
        c.dir = Some(dir.clone());
        c.save().unwrap();
        dir
    }

    /// Asserts a corrupted document degrades to a cold start with the
    /// given recovery reason, then cleans up.
    fn assert_recovers(dir: &Path, reason: &str) {
        let loaded = DiskCache::load(dir);
        assert!(loaded.is_empty(), "corrupt cache must be empty");
        assert_eq!(
            loaded.recovered_reason(),
            Some(reason),
            "load outcome was {:?}",
            loaded.load_outcome()
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn save_releases_the_advisory_lock() {
        let dir = saved_dir("lock-release");
        assert!(
            !dir.join(LOCK_FILE).exists(),
            "the lock file must be removed after a save"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_locks_are_stolen() {
        let dir = saved_dir("lock-stale");
        std::fs::write(dir.join(LOCK_FILE), "99999").unwrap();
        // A stale threshold of zero makes the fresh lock immediately
        // stealable; acquisition must succeed without waiting out the
        // retry budget.
        let lock = SaveLock::acquire(&dir, 0, 1, 0);
        assert!(lock.held, "a stale lock must be stolen");
        drop(lock);
        assert!(!dir.join(LOCK_FILE).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn contended_save_proceeds_last_writer_wins() {
        let dir = saved_dir("lock-contended");
        // A fresh lock held by "another process" that never releases:
        // acquire times out unheld, and save still writes the document.
        std::fs::write(dir.join(LOCK_FILE), "99999").unwrap();
        let lock = SaveLock::acquire(&dir, 2, 1, LOCK_STALE_SECS);
        assert!(!lock.held, "a live lock must not be stolen");
        drop(lock);
        assert!(
            dir.join(LOCK_FILE).exists(),
            "dropping an unheld guard must not remove someone else's lock"
        );
        let mut c = sample();
        c.dir = Some(dir.clone());
        c.save().unwrap();
        assert_eq!(DiskCache::load(&dir).load_outcome(), LoadOutcome::Warm);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn intact_document_loads_warm() {
        let dir = saved_dir("warm");
        let loaded = DiskCache::load(&dir);
        assert_eq!(loaded.load_outcome(), LoadOutcome::Warm);
        assert_eq!(loaded.recovered_reason(), None);
        assert_eq!(loaded.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_cold_not_recovered() {
        let dir = std::env::temp_dir().join(format!("fearless-incr-cold-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let loaded = DiskCache::load(&dir);
        assert!(loaded.is_empty());
        assert_eq!(loaded.load_outcome(), LoadOutcome::Cold);
    }

    #[test]
    fn truncated_document_recovers() {
        let dir = saved_dir("trunc");
        let path = dir.join(CACHE_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert_recovers(&dir, "malformed json");
    }

    #[test]
    fn bit_flip_in_payload_fails_checksum() {
        let dir = saved_dir("flip");
        let path = dir.join(CACHE_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        // Flip a digit inside a stored value: the document still
        // parses, so only the checksum catches it.
        let flipped = text.replace("\"nodes\": 7", "\"nodes\": 8");
        assert_ne!(flipped, text, "payload digit present");
        std::fs::write(&path, flipped).unwrap();
        assert_recovers(&dir, "checksum mismatch");
    }

    #[test]
    fn torn_write_tail_recovers() {
        // Simulate a torn write: the first half of the new document
        // followed by the tail of a different (older) one — parseable
        // prefixes of torn files are exactly what the checksum exists
        // to reject.
        let dir = saved_dir("torn");
        let path = dir.join(CACHE_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        let mut torn = text[..text.len() / 2].to_string();
        torn.push_str("garbage-tail\u{0}\u{0}\u{0}");
        std::fs::write(&path, torn).unwrap();
        assert_recovers(&dir, "malformed json");
    }

    #[test]
    fn schema_version_bump_recovers() {
        let dir = saved_dir("schema");
        let path = dir.join(CACHE_FILE);
        let text = std::fs::read_to_string(&path)
            .unwrap()
            .replace(SCHEMA, "fearless-incr-cache/2");
        std::fs::write(&path, text).unwrap();
        assert_recovers(&dir, "schema mismatch");
    }

    #[test]
    fn invalid_utf8_recovers() {
        let dir = saved_dir("utf8");
        std::fs::write(dir.join(CACHE_FILE), [0xff, 0xfe, b'{', b'}']).unwrap();
        assert_recovers(&dir, "invalid utf-8");
    }

    #[test]
    fn missing_checksum_field_recovers() {
        let dir = saved_dir("nochk");
        let path = dir.join(CACHE_FILE);
        // Strip the checksum line but keep valid JSON + schema.
        std::fs::write(
            &path,
            format!("{{\n  \"schema\": \"{SCHEMA}\",\n  \"entries\": {{}},\n  \"names\": {{}}\n}}"),
        )
        .unwrap();
        assert_recovers(&dir, "missing checksum");
    }

    #[test]
    fn save_leaves_no_temp_file_behind() {
        let dir = saved_dir("tmpclean");
        let stray: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(stray.is_empty(), "temp files must be renamed away");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn steal_reverifies_the_lock_identity() {
        // Regression test for the stale-steal TOCTOU window: a lock that
        // changed hands between the staleness check and the steal must
        // NOT be removed, and must survive in place.
        let dir = saved_dir("lock-toctou");
        let path = dir.join(LOCK_FILE);
        std::fs::write(&path, "11111").unwrap();
        let stale_sample = LockSample::read(&path).unwrap();
        // A fresh holder re-creates the lock in the window (different
        // pid — the sampled identity no longer matches).
        std::fs::write(&path, "22222").unwrap();
        assert!(
            !try_steal(&path, &stale_sample),
            "a lock that changed identity must not be stolen"
        );
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            "22222",
            "the fresh holder's lock must survive the aborted steal"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn steal_succeeds_when_the_sample_still_matches() {
        let dir = saved_dir("lock-steal-ok");
        let path = dir.join(LOCK_FILE);
        std::fs::write(&path, "99999").unwrap();
        let sample = LockSample::read(&path).unwrap();
        assert!(
            try_steal(&path, &sample),
            "an unchanged stale lock must be stolen"
        );
        assert!(!path.exists(), "the stolen lock must be removed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dirty_log_mirrors_inserts_and_name_moves() {
        use crate::wal::WalRecord;
        let mut c = DiskCache::ephemeral();
        let a = Fingerprint::from_hex("00000000000000000000000000000001").unwrap();
        let b = Fingerprint::from_hex("00000000000000000000000000000002").unwrap();
        // Mutations before the log is enabled are not recorded.
        c.insert(
            a,
            CachedOutcome::Err {
                message: "pre".to_string(),
                span_lo: 0,
                span_hi: 1,
            },
        );
        c.enable_dirty_log();
        assert!(c.take_dirty().is_empty());
        c.insert(
            b,
            CachedOutcome::Ok {
                nodes: 3,
                vir_steps: 1,
                search_nodes: 0,
                counters: BTreeMap::new(),
            },
        );
        c.note_name("p/f", b);
        c.note_name("p/f", b); // stable re-note: not logged
        let dirty = c.take_dirty();
        assert_eq!(dirty.len(), 2, "{dirty:?}");
        assert!(matches!(&dirty[0], WalRecord::Entry { fp, .. } if fp == &b.to_hex()));
        assert!(
            matches!(&dirty[1], WalRecord::Name { name, fp } if name == "p/f" && fp == &b.to_hex())
        );
        assert!(c.take_dirty().is_empty(), "take_dirty drains");

        // Replaying the records into a fresh cache reproduces the state.
        let mut fresh = DiskCache::ephemeral();
        assert_eq!(fresh.apply_wal(&dirty), 2);
        assert_eq!(fresh.apply_wal(&dirty), 0, "replay is idempotent");
        assert!(matches!(
            fresh.lookup(b),
            Some(CachedOutcome::Ok { nodes: 3, .. })
        ));
    }

    #[test]
    fn note_name_counts_moves_only() {
        let mut c = DiskCache::ephemeral();
        let a = Fingerprint::from_hex("00000000000000000000000000000001").unwrap();
        let b = Fingerprint::from_hex("00000000000000000000000000000002").unwrap();
        assert!(
            !c.note_name("p/f", a),
            "first sighting is not an invalidation"
        );
        assert!(!c.note_name("p/f", a), "same fingerprint is stable");
        assert!(c.note_name("p/f", b), "moved fingerprint invalidates");
    }
}
