//! # fearless-incr
//!
//! The incremental + parallel checking driver behind `fearlessc check
//! --jobs N --cache <dir>`.
//!
//! The checker is signature-modular (§4.4): every function is checked
//! against its signature environment independently, so per-function
//! results are cacheable by content [`Fingerprint`] and the check
//! workload — a file's functions, or the whole corpus — is
//! embarrassingly parallel. This crate exploits both:
//!
//! * [`disk::DiskCache`] — a deterministic on-disk JSON cache of
//!   per-function check summaries, keyed by fingerprint, carrying enough
//!   (verdict, derivation shape, span counters) to replay reports,
//!   diagnostics, and `--metrics json` spans byte-for-byte.
//! * [`pool`] — a small hand-rolled work-stealing thread pool (no
//!   external deps) that drives independent `check_fn` queries.
//! * [`check_units`] — the driver: fingerprint serially, answer hits
//!   from the cache, fan misses out over the pool, then re-assemble
//!   results and trace spans in definition order so output bytes never
//!   depend on the schedule or on cache warmth (only the dedicated
//!   `cache` summary span reflects warmth).

#![warn(missing_docs)]

pub mod disk;
pub mod pool;
pub mod sched;
pub mod wal;

use fearless_core::env::Globals;
use fearless_core::{check, CacheStats, CheckerOptions, Fingerprint, TypeError};
use fearless_syntax::{Program, Span};
use fearless_trace::{MemorySink, Tracer};

pub use disk::{checksum_hex, parse_json, CachedOutcome, DiskCache, LoadOutcome};
pub use wal::{CacheWal, WalRecord, WalReplay};

/// Every counter name a `check` span can carry, used to re-intern
/// counters parsed back from the on-disk cache as the `&'static str`
/// keys the trace layer requires. `counter_names::intern` must stay in
/// sync with `fearless_core::check::emit_check_metrics`; the
/// `all_emitted_counters_are_internable` test in this crate's
/// integration suite guards the pairing.
pub mod counter_names {
    /// The full table.
    pub const ALL: &[&str] = &[
        "check.deriv_nodes",
        "check.vir_steps",
        "check.liveness_queries",
        "check.oracle_queries",
        "check.oracle_hits",
        "check.oracle_misses",
        "check.joins_greedy",
        "check.joins_fallback",
        "search.runs",
        "search.nodes",
        "search.backtracks",
        "search.enqueued",
        "search.unify_attempts",
        "search.unify_failures",
        "search.exhausted",
        "vir.focus",
        "vir.unfocus",
        "vir.explore",
        "vir.retract",
        "vir.attach",
        "vir.weaken",
        "vir.rename",
        "vir.invalidate",
        "vir.scrub-field",
    ];

    /// Maps a counter name back to its static identity, if known.
    pub fn intern(name: &str) -> Option<&'static str> {
        ALL.iter().find(|k| **k == name).copied()
    }
}

/// One function's check result as seen by the driver.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FnSummary {
    /// Function name.
    pub name: String,
    /// Content fingerprint the outcome is keyed under.
    pub fingerprint: Fingerprint,
    /// Whether the outcome came from the cache.
    pub cache_hit: bool,
    /// The (replayable) outcome.
    pub outcome: CachedOutcome,
}

/// The checked summary of one unit (a source file, or one corpus
/// entry).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UnitReport {
    /// Unit label (a corpus entry name; empty for a plain file).
    pub label: String,
    /// Environment-validation error, if the unit never reached
    /// per-function checking.
    pub env_error: Option<TypeError>,
    /// Per-function summaries in definition order.
    pub functions: Vec<FnSummary>,
}

impl UnitReport {
    /// The first error in definition order (environment errors first),
    /// with the function context attached — identical to what
    /// `check_program` would have reported.
    pub fn first_error(&self) -> Option<TypeError> {
        if let Some(e) = &self.env_error {
            return Some(e.clone());
        }
        self.functions.iter().find_map(|f| match &f.outcome {
            CachedOutcome::Err {
                message,
                span_lo,
                span_hi,
            } => Some(
                TypeError::new(message.clone(), Span::new(*span_lo, *span_hi))
                    .in_func(f.name.clone()),
            ),
            CachedOutcome::Ok { .. } => None,
        })
    }

    /// Total derivation nodes across successfully checked functions.
    pub fn total_nodes(&self) -> u64 {
        self.functions
            .iter()
            .filter_map(|f| match &f.outcome {
                CachedOutcome::Ok { nodes, .. } => Some(*nodes),
                _ => None,
            })
            .sum()
    }

    /// Total virtual-transformation steps across checked functions.
    pub fn total_vir_steps(&self) -> u64 {
        self.functions
            .iter()
            .filter_map(|f| match &f.outcome {
                CachedOutcome::Ok { vir_steps, .. } => Some(*vir_steps),
                _ => None,
            })
            .sum()
    }
}

/// The result of one driver run over a set of units.
#[derive(Debug)]
pub struct CheckRun {
    /// Per-unit reports, in input order.
    pub units: Vec<UnitReport>,
    /// Cache traffic for this run (all zeros when no cache was given).
    pub stats: CacheStats,
    /// The topological/batched issue plan the misses ran under (empty
    /// when everything hit the cache). Deterministic: replanning the
    /// same misses yields the same schedule.
    pub schedule: sched::Schedule,
}

/// Checks a set of `(label, program)` units, answering per-function
/// queries from `cache` (when given) and running misses on `jobs`
/// worker threads.
///
/// Results — reports, diagnostics, and the `check` spans replayed into
/// `tracer` — are byte-deterministic and independent of both the number
/// of jobs and cache warmth. Cache warmth is observable only in
/// [`CheckRun::stats`] and the trailing `cache` summary span (emitted
/// iff a cache is in use). The cache is updated in memory; call
/// [`DiskCache::save`] afterwards to persist it.
pub fn check_units(
    units: &[(String, Program)],
    options: &CheckerOptions,
    jobs: usize,
    mut cache: Option<&mut DiskCache>,
    tracer: &mut Tracer<'_>,
) -> CheckRun {
    let mut stats = CacheStats::default();
    if let Some(c) = cache.as_deref_mut() {
        if let Some(reason) = c.take_recovered_reason() {
            // A corrupt persistent cache degraded to a cold start.
            // Diagnostics stay byte-identical to a true cold run; only
            // the stat (and this trace event) record the recovery.
            stats.recoveries += 1;
            if tracer.is_enabled() {
                tracer.span_enter("cache_recovery", reason);
                tracer.add("cache.recoveries", 1);
                tracer.span_exit();
            }
        }
    }
    // Tracing and the cache both need the per-function counter map; a
    // bare run can skip collecting it entirely.
    let want_counters = tracer.is_enabled() || cache.is_some();

    // Phase 1 (serial): validate environments and fingerprint every
    // function; split into cache hits and misses.
    struct PendingUnit<'p> {
        label: &'p str,
        globals: Option<Globals>,
        env_error: Option<TypeError>,
        // (name, fingerprint, cached outcome or miss marker)
        fns: Vec<(String, Fingerprint, Option<CachedOutcome>)>,
    }
    let mut pending: Vec<PendingUnit<'_>> = Vec::with_capacity(units.len());
    for (label, program) in units {
        match Globals::build(program, options.mode) {
            Err(e) => pending.push(PendingUnit {
                label,
                globals: None,
                env_error: Some(e),
                fns: Vec::new(),
            }),
            Ok(globals) => {
                let mut fns = Vec::with_capacity(program.funcs.len());
                for f in &program.funcs {
                    let fp = fearless_core::fn_fingerprint(&globals, options, f);
                    let qualified = format!("{label}:{}", f.name);
                    let cached = match cache.as_deref_mut() {
                        Some(c) => {
                            if c.note_name(&qualified, fp) {
                                stats.invalidations += 1;
                            }
                            let cached = c.lookup(fp).cloned();
                            match &cached {
                                Some(_) => stats.hits += 1,
                                None => stats.misses += 1,
                            }
                            cached
                        }
                        None => None,
                    };
                    fns.push((f.name.to_string(), fp, cached));
                }
                pending.push(PendingUnit {
                    label,
                    globals: Some(globals),
                    env_error: None,
                    fns,
                });
            }
        }
    }

    // Phase 2 (parallel): plan the misses into a topological, batched
    // schedule (callees issue before callers; small jobs share a batch
    // so pool overhead amortizes) and run the batches through the pool.
    // Each batch checks its functions with private sinks and returns
    // their replayable outcomes; because the checker is
    // signature-modular the plan only shapes performance, never results.
    let mut miss_list = Vec::new();
    for (ui, unit) in pending.iter().enumerate() {
        for (fi, (_, _, cached)) in unit.fns.iter().enumerate() {
            if cached.is_none() {
                miss_list.push((ui, fi));
            }
        }
    }
    let schedule = sched::plan(units, &miss_list, jobs.max(1));
    let batch_jobs: Vec<Vec<(usize, usize)>> =
        schedule.batches.iter().map(|b| b.jobs.clone()).collect();
    let outcomes: Vec<Vec<((usize, usize), CachedOutcome)>> = {
        let pending = &pending;
        pool::run_jobs(jobs, batch_jobs, move |batch| {
            batch
                .into_iter()
                .map(|(ui, fi)| {
                    let unit = &pending[ui];
                    let globals = unit.globals.as_ref().expect("misses imply globals");
                    let def = &units[ui].1.funcs[fi];
                    let outcome = check_one(globals, options, def, want_counters);
                    ((ui, fi), outcome)
                })
                .collect()
        })
    };

    // Phase 3 (serial): merge outcomes back, replay spans in definition
    // order, and feed fresh results into the cache.
    let mut fresh: std::collections::BTreeMap<(usize, usize), CachedOutcome> =
        outcomes.into_iter().flatten().collect();
    let mut run = CheckRun {
        units: Vec::with_capacity(pending.len()),
        stats,
        schedule,
    };
    for (ui, unit) in pending.into_iter().enumerate() {
        let mut report = UnitReport {
            label: unit.label.to_string(),
            env_error: unit.env_error,
            functions: Vec::with_capacity(unit.fns.len()),
        };
        for (fi, (name, fp, cached)) in unit.fns.into_iter().enumerate() {
            let (outcome, cache_hit) = match cached {
                Some(outcome) => (outcome, true),
                None => {
                    let outcome = fresh.remove(&(ui, fi)).expect("pool returned every job");
                    if let Some(c) = cache.as_deref_mut() {
                        c.insert(fp, outcome.clone());
                    }
                    (outcome, false)
                }
            };
            replay_span(tracer, &name, &outcome);
            report.functions.push(FnSummary {
                name,
                fingerprint: fp,
                cache_hit,
                outcome,
            });
        }
        run.units.push(report);
    }

    // The warmth-dependent summary span: the one deliberate difference
    // between a cold and a warm trace.
    if let Some(c) = cache {
        tracer.span_enter("cache", "summary");
        tracer.add("cache.hits", run.stats.hits);
        tracer.add("cache.misses", run.stats.misses);
        tracer.add("cache.invalidations", run.stats.invalidations);
        if run.stats.recoveries > 0 {
            tracer.add("cache.recoveries", run.stats.recoveries);
        }
        tracer.add("cache.entries", c.len() as u64);
        tracer.span_exit();
    }
    run
}

/// Checks one function and summarizes the outcome (with its span
/// counters when `want_counters`).
fn check_one(
    globals: &Globals,
    options: &CheckerOptions,
    def: &fearless_syntax::FnDef,
    want_counters: bool,
) -> CachedOutcome {
    if want_counters {
        let mut sink = MemorySink::new();
        let result = check::check_fn_traced(globals, options, def, &mut Tracer::new(&mut sink));
        match result {
            Ok(d) => CachedOutcome::Ok {
                nodes: d.len() as u64,
                vir_steps: d.vir_steps as u64,
                search_nodes: d.search_nodes as u64,
                counters: sink
                    .spans()
                    .next()
                    .map(|s| {
                        s.counters
                            .iter()
                            .map(|(k, v)| (k.to_string(), *v))
                            .collect()
                    })
                    .unwrap_or_default(),
            },
            Err(e) => CachedOutcome::Err {
                message: e.message().to_string(),
                span_lo: e.span().lo,
                span_hi: e.span().hi,
            },
        }
    } else {
        match check::check_fn(globals, options, def) {
            Ok(d) => CachedOutcome::Ok {
                nodes: d.len() as u64,
                vir_steps: d.vir_steps as u64,
                search_nodes: d.search_nodes as u64,
                counters: Default::default(),
            },
            Err(e) => CachedOutcome::Err {
                message: e.message().to_string(),
                span_lo: e.span().lo,
                span_hi: e.span().hi,
            },
        }
    }
}

/// Replays one function's `check` span into `tracer`. Fresh and cached
/// outcomes replay identically, which is what makes warm metrics match
/// cold metrics byte-for-byte.
fn replay_span(tracer: &mut Tracer<'_>, name: &str, outcome: &CachedOutcome) {
    if !tracer.is_enabled() {
        return;
    }
    tracer.span_enter("check", name);
    if let CachedOutcome::Ok { counters, .. } = outcome {
        for (k, v) in counters {
            if let Some(key) = counter_names::intern(k) {
                tracer.add(key, *v);
            }
        }
    }
    tracer.span_exit();
}

#[cfg(test)]
mod tests {
    use super::*;
    use fearless_syntax::parse_program;

    const SRC: &str = "
        struct data { value: int }
        def make(v: int) : data { new data(v) }
        def get(d: data) : int { d.value }
    ";

    fn units() -> Vec<(String, Program)> {
        vec![(String::new(), parse_program(SRC).unwrap())]
    }

    #[test]
    fn matches_check_program() {
        let opts = CheckerOptions::default();
        let run = check_units(&units(), &opts, 1, None, &mut Tracer::off());
        let checked = fearless_core::check_program(&units()[0].1, &opts).expect("program checks");
        assert_eq!(run.units[0].total_nodes(), checked.total_nodes() as u64);
        assert_eq!(
            run.units[0].total_vir_steps(),
            checked.total_vir_steps() as u64
        );
        assert!(run.units[0].first_error().is_none());
        assert_eq!(run.stats, CacheStats::default());
    }

    #[test]
    fn first_error_matches_serial_checker() {
        let bad = "def f(x: int) : bool { x }\ndef g(y: int) : int { y }";
        let program = parse_program(bad).unwrap();
        let opts = CheckerOptions::default();
        let unit = vec![(String::new(), program.clone())];
        for jobs in [1, 4] {
            let run = check_units(&unit, &opts, jobs, None, &mut Tracer::off());
            let incr_err = run.units[0].first_error().expect("f fails");
            let serial_err = fearless_core::check_program(&program, &opts).unwrap_err();
            assert_eq!(incr_err, serial_err, "jobs={jobs}");
        }
    }

    #[test]
    fn corrupt_cache_run_matches_cold_run_and_counts_recovery() {
        let opts = CheckerOptions::default();
        let dir = std::env::temp_dir().join(format!(
            "fearless-incr-recover-units-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(disk::CACHE_FILE), "{ torn mid-wri").unwrap();

        let mut corrupt = DiskCache::load(&dir);
        assert_eq!(corrupt.recovered_reason(), Some("malformed json"));
        let recovered = check_units(&units(), &opts, 1, Some(&mut corrupt), &mut Tracer::off());

        let mut cold = DiskCache::ephemeral();
        let cold_run = check_units(&units(), &opts, 1, Some(&mut cold), &mut Tracer::off());

        // Same reports, same hit/miss traffic; only the recovery stat
        // differs.
        assert_eq!(recovered.units, cold_run.units);
        assert_eq!(recovered.stats.hits, cold_run.stats.hits);
        assert_eq!(recovered.stats.misses, cold_run.stats.misses);
        assert_eq!(recovered.stats.recoveries, 1);
        assert_eq!(cold_run.stats.recoveries, 0);

        // Saving the recovered cache heals the document on disk.
        corrupt.save().unwrap();
        let healed = DiskCache::load(&dir);
        assert_eq!(healed.load_outcome(), LoadOutcome::Warm);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_run_is_all_hits_with_equal_reports() {
        let opts = CheckerOptions::default();
        let mut cache = DiskCache::ephemeral();
        let cold = check_units(&units(), &opts, 1, Some(&mut cache), &mut Tracer::off());
        assert_eq!(cold.stats.misses, 2);
        let warm = check_units(&units(), &opts, 2, Some(&mut cache), &mut Tracer::off());
        assert_eq!(warm.stats.hits, 2);
        assert_eq!(warm.stats.misses, 0);
        assert_eq!(warm.stats.invalidations, 0);
        // Reports are identical apart from the hit flags.
        let strip = |units: &[UnitReport]| {
            let mut units = units.to_vec();
            for u in &mut units {
                for f in &mut u.functions {
                    f.cache_hit = false;
                }
            }
            units
        };
        assert_eq!(strip(&cold.units), strip(&warm.units));
        assert!(warm.units[0].functions.iter().all(|f| f.cache_hit));
    }
}
