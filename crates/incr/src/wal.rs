//! Crash-recoverable write-ahead journal for the fingerprint cache.
//!
//! The `fearlessc serve` daemon keeps the [`crate::disk::DiskCache`]
//! hot in memory and persists it once, on drain. A SIGKILL mid-run
//! would therefore lose every outcome computed since startup — warm
//! state the next daemon must recompute. The WAL closes that gap:
//! every cache mutation (a fresh outcome, a name move) is appended to
//! `check-cache.wal` *before* the response leaves the daemon, so a
//! crash loses at most the entries still in flight.
//!
//! ## Format
//!
//! Line-oriented, append-only, one JSON document per line:
//!
//! ```text
//! {"schema": "fearless-incr-wal/1"}
//! {"crc": "<fnv1a64 hex of rec>", "rec": {"kind": "entry", "fp": "…", "outcome": {…}}}
//! {"crc": "…", "rec": {"kind": "name", "name": "…", "fp": "…"}}
//! ```
//!
//! The first line is the schema header. Every record line carries an
//! FNV-1a 64 checksum of the canonical `rec` rendering; [`replay`]
//! stops at the first line that is torn, fails its checksum, or does
//! not parse — everything before the tear is recovered, everything
//! after is discarded. A missing file is an ordinary empty journal.
//! Replay can never fail: like the cache document itself, the WAL
//! degrades, it does not error.
//!
//! ## Lifecycle
//!
//! On startup the daemon replays the WAL into the freshly loaded
//! cache ([`crate::disk::DiskCache::apply_wal`]) and *compacts*:
//! saves the merged cache document and resets the WAL. On clean
//! shutdown the cache is saved and the WAL reset, so a WAL with
//! records in it is always the signature of a crash.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use fearless_trace::Json;

use crate::disk::{checksum_hex, parse_json, CachedOutcome};

/// WAL file name inside the cache directory (next to
/// [`crate::disk::CACHE_FILE`]).
pub const WAL_FILE: &str = "check-cache.wal";

/// Schema tag on the WAL header line.
pub const SCHEMA: &str = "fearless-incr-wal/1";

/// One logged cache mutation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WalRecord {
    /// A fresh outcome stored under a fingerprint.
    Entry {
        /// Fingerprint hex key.
        fp: String,
        /// The cached outcome.
        outcome: CachedOutcome,
    },
    /// A qualified function name moved to (or first appeared at) a
    /// fingerprint.
    Name {
        /// Qualified function name.
        name: String,
        /// Fingerprint hex the name now maps to.
        fp: String,
    },
}

impl WalRecord {
    /// Canonical JSON form — the bytes the per-line checksum covers.
    pub fn to_json(&self) -> Json {
        match self {
            WalRecord::Entry { fp, outcome } => Json::obj([
                ("kind", Json::str("entry")),
                ("fp", Json::str(fp.clone())),
                ("outcome", outcome.to_json()),
            ]),
            WalRecord::Name { name, fp } => Json::obj([
                ("kind", Json::str("name")),
                ("name", Json::str(name.clone())),
                ("fp", Json::str(fp.clone())),
            ]),
        }
    }

    /// Parses a record; `None` on any shape mismatch.
    pub fn from_json(v: &Json) -> Option<WalRecord> {
        let Json::Obj(fields) = v else { return None };
        let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        let as_str = |v: &Json| match v {
            Json::Str(s) => Some(s.clone()),
            _ => None,
        };
        match get("kind").and_then(&as_str)?.as_str() {
            "entry" => Some(WalRecord::Entry {
                fp: get("fp").and_then(&as_str)?,
                outcome: CachedOutcome::from_json(get("outcome")?)?,
            }),
            "name" => Some(WalRecord::Name {
                name: get("name").and_then(&as_str)?,
                fp: get("fp").and_then(&as_str)?,
            }),
            _ => None,
        }
    }
}

/// Renders one checksummed WAL line (no trailing newline). Records use
/// the *compact* rendering — one value per line is what makes torn
/// tails detectable line-by-line.
fn record_line(rec: &WalRecord) -> String {
    let body = rec.to_json().render_compact();
    Json::obj([
        ("crc", Json::str(checksum_hex(&body))),
        ("rec", rec.to_json()),
    ])
    .render_compact()
}

fn header_line() -> String {
    Json::obj([("schema", Json::str(SCHEMA))]).render_compact()
}

/// An open, append-mode WAL.
#[derive(Debug)]
pub struct CacheWal {
    path: PathBuf,
    file: std::fs::File,
}

impl CacheWal {
    /// Opens (creating if needed) the WAL inside `dir`, writing the
    /// schema header when the file is empty.
    ///
    /// # Errors
    ///
    /// Returns a message when the directory or file cannot be opened
    /// or the header cannot be written — callers degrade to running
    /// without a WAL.
    pub fn open(dir: &Path) -> Result<CacheWal, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create cache dir `{}`: {e}", dir.display()))?;
        let path = dir.join(WAL_FILE);
        let file = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&path)
            .map_err(|e| format!("cannot open wal `{}`: {e}", path.display()))?;
        let mut wal = CacheWal { path, file };
        let len = wal
            .file
            .metadata()
            .map_err(|e| format!("cannot stat wal `{}`: {e}", wal.path.display()))?
            .len();
        if len == 0 {
            wal.write_header()?;
        }
        Ok(wal)
    }

    fn write_header(&mut self) -> Result<(), String> {
        writeln!(self.file, "{}", header_line())
            .and_then(|()| self.file.flush())
            .map_err(|e| format!("cannot write wal header `{}`: {e}", self.path.display()))
    }

    /// Appends records (one flushed write per call), returning how many
    /// were written.
    ///
    /// # Errors
    ///
    /// Returns a message on any write failure; the records are then in
    /// an unknown partially-written state, which replay's per-line
    /// checksums make safe.
    pub fn append(&mut self, records: &[WalRecord]) -> Result<usize, String> {
        if records.is_empty() {
            return Ok(0);
        }
        let mut buf = String::new();
        for rec in records {
            buf.push_str(&record_line(rec));
            buf.push('\n');
        }
        self.file
            .write_all(buf.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| format!("cannot append wal `{}`: {e}", self.path.display()))?;
        Ok(records.len())
    }

    /// Truncates the journal back to just the schema header — called
    /// after the cache document itself has been saved (compaction) so
    /// the WAL only ever holds the delta since the last save.
    ///
    /// # Errors
    ///
    /// Returns a message when the truncate or header rewrite fails.
    pub fn reset(&mut self) -> Result<(), String> {
        self.file
            .set_len(0)
            .map_err(|e| format!("cannot truncate wal `{}`: {e}", self.path.display()))?;
        self.write_header()
    }

    /// The WAL file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// What [`replay`] recovered.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Every record up to the first tear, in append order.
    pub records: Vec<WalRecord>,
    /// Whether the journal ended in a torn/corrupt line (the records
    /// before it are still good).
    pub torn: bool,
}

/// Replays the WAL inside `dir`. A missing file is an empty journal; a
/// bad header discards everything; a torn or checksum-failing line
/// stops the replay there, keeping the prefix. Never an error.
pub fn replay(dir: &Path) -> WalReplay {
    let path = dir.join(WAL_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(_) => return WalReplay::default(),
    };
    let mut out = WalReplay::default();
    let mut lines = text.split('\n');
    // Header line: schema tag must match exactly.
    let header_ok = lines.next().is_some_and(|l| l == header_line());
    if !header_ok {
        out.torn = !text.is_empty();
        return out;
    }
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let parsed = parse_json(line);
        let rec = parsed.as_ref().and_then(|v| {
            let Json::Obj(fields) = v else { return None };
            let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
            let crc = match get("crc")? {
                Json::Str(s) => s.clone(),
                _ => return None,
            };
            let body = get("rec")?;
            if checksum_hex(&body.render_compact()) != crc {
                return None;
            }
            WalRecord::from_json(body)
        });
        match rec {
            Some(rec) => out.records.push(rec),
            None => {
                out.torn = true;
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fearless-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_records() -> Vec<WalRecord> {
        let mut counters = BTreeMap::new();
        counters.insert("check.deriv_nodes".to_string(), 5);
        vec![
            WalRecord::Entry {
                fp: "00000000000000000000000000000abc".to_string(),
                outcome: CachedOutcome::Ok {
                    nodes: 5,
                    vir_steps: 2,
                    search_nodes: 1,
                    counters,
                },
            },
            WalRecord::Name {
                name: "prog/f".to_string(),
                fp: "00000000000000000000000000000abc".to_string(),
            },
            WalRecord::Entry {
                fp: "00000000000000000000000000000def".to_string(),
                outcome: CachedOutcome::Err {
                    message: "cannot \"unify\"\nbranches".to_string(),
                    span_lo: 3,
                    span_hi: 9,
                },
            },
        ]
    }

    #[test]
    fn append_replay_roundtrip() {
        let dir = scratch("roundtrip");
        let recs = sample_records();
        let mut wal = CacheWal::open(&dir).unwrap();
        assert_eq!(wal.append(&recs[..2]).unwrap(), 2);
        assert_eq!(wal.append(&recs[2..]).unwrap(), 1);
        drop(wal);
        // Reopening must not rewrite or disturb existing records.
        let _again = CacheWal::open(&dir).unwrap();
        let replayed = replay(&dir);
        assert!(!replayed.torn);
        assert_eq!(replayed.records, recs);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_is_an_empty_journal() {
        let dir = scratch("missing");
        let replayed = replay(&dir);
        assert!(replayed.records.is_empty());
        assert!(!replayed.torn);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_keeps_the_prefix() {
        let dir = scratch("torn");
        let recs = sample_records();
        let mut wal = CacheWal::open(&dir).unwrap();
        wal.append(&recs).unwrap();
        // SIGKILL mid-append: a final line cut off partway through.
        let mut text = std::fs::read_to_string(dir.join(WAL_FILE)).unwrap();
        let extra = record_line(&recs[0]);
        text.push_str(&extra[..extra.len() / 2]);
        std::fs::write(dir.join(WAL_FILE), text).unwrap();
        let replayed = replay(&dir);
        assert!(replayed.torn, "a half-written line must read as torn");
        assert_eq!(replayed.records, recs, "the intact prefix survives");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_fails_the_line_checksum() {
        let dir = scratch("flip");
        let recs = sample_records();
        let mut wal = CacheWal::open(&dir).unwrap();
        wal.append(&recs).unwrap();
        let text = std::fs::read_to_string(dir.join(WAL_FILE)).unwrap();
        // Flip a digit inside the *last* record's payload: the line
        // still parses, so only the crc catches it.
        let flipped = text.replace("\"span_lo\": 3", "\"span_lo\": 4");
        assert_ne!(flipped, text);
        std::fs::write(dir.join(WAL_FILE), flipped).unwrap();
        let replayed = replay(&dir);
        assert!(replayed.torn);
        assert_eq!(replayed.records, recs[..2], "replay stops at the flip");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_header_discards_everything() {
        let dir = scratch("header");
        let mut wal = CacheWal::open(&dir).unwrap();
        wal.append(&sample_records()).unwrap();
        let text = std::fs::read_to_string(dir.join(WAL_FILE)).unwrap();
        std::fs::write(
            dir.join(WAL_FILE),
            text.replace(SCHEMA, "fearless-incr-wal/9"),
        )
        .unwrap();
        let replayed = replay(&dir);
        assert!(replayed.torn);
        assert!(replayed.records.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reset_compacts_to_just_the_header() {
        let dir = scratch("reset");
        let mut wal = CacheWal::open(&dir).unwrap();
        wal.append(&sample_records()).unwrap();
        wal.reset().unwrap();
        let replayed = replay(&dir);
        assert!(replayed.records.is_empty());
        assert!(!replayed.torn);
        // And the file is usable for further appends.
        wal.append(&sample_records()[..1]).unwrap();
        assert_eq!(replay(&dir).records.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_feeds_apply_wal() {
        use crate::disk::DiskCache;
        let dir = scratch("apply");
        let mut wal = CacheWal::open(&dir).unwrap();
        wal.append(&sample_records()).unwrap();
        let mut cache = DiskCache::ephemeral();
        let replayed = replay(&dir);
        assert_eq!(cache.apply_wal(&replayed.records), 3);
        assert_eq!(cache.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
