//! A small hand-rolled work-stealing thread pool.
//!
//! The workspace is dependency-free by design (no `rayon`), and the
//! workload — one independent `check_fn` query per task — is exactly the
//! shape work stealing was made for: tasks vary wildly in cost (a
//! three-line accessor vs. a search-heavy red-black-tree rebalance), so
//! static round-robin partitioning leaves workers idle while one grinds.
//!
//! Design: every worker owns a deque seeded round-robin. A worker pops
//! its own deque from the *front* (LIFO-ish locality is irrelevant here;
//! front-pop keeps seeded order) and, when empty, steals from the *back*
//! of the other deques. Deques are `Mutex<VecDeque>` — contention is one
//! lock per task, negligible against a multi-millisecond check — and
//! results land in an index-addressed slot table, so the output order is
//! the input order no matter which worker ran what. Determinism of
//! results therefore never depends on the schedule; only wall-clock
//! does.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f` over `items` on `jobs` worker threads, returning results in
/// input order. `jobs <= 1` (or a single item) runs inline on the
/// calling thread with no pool at all.
pub fn run_jobs<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = jobs.min(n).max(1);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }

    // Seed the per-worker deques round-robin, tagging each item with its
    // input index so results can be reassembled in order.
    let deques: Vec<Mutex<VecDeque<(usize, T)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, item) in items.into_iter().enumerate() {
        deques[i % workers].lock().unwrap().push_back((i, item));
    }

    let remaining = AtomicUsize::new(n);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for me in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let remaining = &remaining;
            let f = &f;
            scope.spawn(move || loop {
                // Own queue first (front), then steal from the back of
                // the others, scanning from our right-hand neighbour.
                let mut task = deques[me].lock().unwrap().pop_front();
                if task.is_none() {
                    for k in 1..workers {
                        let victim = (me + k) % workers;
                        task = deques[victim].lock().unwrap().pop_back();
                        if task.is_some() {
                            break;
                        }
                    }
                }
                match task {
                    Some((i, item)) => {
                        let r = f(item);
                        *slots[i].lock().unwrap() = Some(r);
                        remaining.fetch_sub(1, Ordering::Release);
                    }
                    None => {
                        if remaining.load(Ordering::Acquire) == 0 {
                            break;
                        }
                        // Another worker still holds in-flight tasks we
                        // cannot steal; let it finish.
                        std::thread::yield_now();
                    }
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = run_jobs(8, items.clone(), |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_job_runs_inline() {
        let out = run_jobs(1, vec![1, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<i32> = run_jobs(4, Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn skewed_costs_get_stolen() {
        // One pathological task plus many cheap ones: with stealing, the
        // cheap tasks all complete even though they were seeded onto the
        // same deque rotation as the expensive one.
        let items: Vec<u64> = (0..64).collect();
        let out = run_jobs(4, items, |x| {
            if x == 0 {
                // Simulate an expensive check.
                let mut acc = 0u64;
                for i in 0..2_000_000u64 {
                    acc = acc.wrapping_add(i ^ acc);
                }
                acc.wrapping_mul(0) + 1000
            } else {
                x
            }
        });
        assert_eq!(out[0], 1000);
        assert_eq!(out[63], 63);
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn more_jobs_than_items() {
        let out = run_jobs(32, vec![5, 6], |x| x);
        assert_eq!(out, vec![5, 6]);
    }
}
