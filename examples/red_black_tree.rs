//! The red-black tree (paper §8): iso children, in-place Okasaki-style
//! rebalancing ("shuffle"), non-destructive queries — the paper's most
//! complex example, type-checked in milliseconds and validated at run time.
//!
//! ```text
//! cargo run -p fearless-bench --example red_black_tree
//! ```

use std::time::Instant;

use fearless_runtime::{Machine, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entry = fearless_corpus::rbt::entry();

    let start = Instant::now();
    let checked = entry.check(&fearless_core::CheckerOptions::default())?;
    let check_time = start.elapsed();
    let start = Instant::now();
    let report = fearless_verify::verify_program(&checked)?;
    let verify_time = start.elapsed();
    println!(
        "red-black tree: {} functions checked in {check_time:.2?}, verified in {verify_time:.2?} \
         ({} rule nodes, {} TS1 steps)",
        checked.derivations.len(),
        report.rule_nodes,
        report.vir_steps
    );

    let program = entry.parse();
    let mut m = Machine::new(&program)?;
    for n in [1i64, 10, 100, 500] {
        let mut m2 = Machine::new(&program)?;
        let ok = m2.call("rbt_demo", vec![Value::Int(n)])?;
        println!("insert {n:>4} keys: invariants hold = {ok}");
        assert_eq!(ok, Value::Bool(true));
    }

    // Point queries.
    let t = m.call("rbt_fill", vec![Value::Int(100)])?;
    for i in [0i64, 42, 99] {
        let key = (i * 37) % 1009;
        let v = m.call("rbt_value_of", vec![t.clone(), Value::Int(key)])?;
        println!("value at key {key:>4} = {v} (inserted as {i})");
    }
    println!("size = {}", m.call("rbt_size", vec![t.clone()])?);
    println!("valid = {}", m.call("rbt_valid", vec![t])?);
    Ok(())
}
