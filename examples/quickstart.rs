//! Quickstart: parse a program in the surface language, type-check it
//! under tempered domination, independently verify the derivation, and run
//! it on the abstract machine with dynamic reservation checks.
//!
//! ```text
//! cargo run -p fearless-bench --example quickstart
//! ```

use fearless_core::CheckerOptions;
use fearless_runtime::{Machine, Value};
use fearless_syntax::parse_program;

const SOURCE: &str = "
struct data { value: int }
struct sll_node {
  iso payload : data;
  iso next : sll_node?;
}

// Figure 2 of the paper: remove the final element of a singly linked
// list, returning its payload as a *dominating* reference — impossible to
// express without destructive reads in prior global-domination systems.
def remove_tail(n : sll_node) : data? {
  let some(next) = n.next in {
    if (is_none(next.next)) {
      n.next = none;
      some(next.payload)
    } else { remove_tail(next) }
  } else { none }
}

def build(n : int) : sll_node {
  let node = new sll_node(new data(n), none);
  while (n > 1) {
    n = n - 1;
    node = new sll_node(new data(n), some(node))
  };
  node
}

def demo(n : int) : int {
  let list = build(n);
  let m = remove_tail(list);
  let some(d) = m in { d.value } else { 0 - 1 }
}
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse.
    let program = parse_program(SOURCE)?;
    println!(
        "parsed {} structs, {} functions",
        program.structs.len(),
        program.funcs.len()
    );

    // 2. Type-check (the prover). This produces full typing derivations.
    let checked = fearless_core::check_program(&program, &CheckerOptions::default())?;
    println!(
        "checked: {} derivation nodes, {} virtual transformations",
        checked.total_nodes(),
        checked.total_vir_steps()
    );

    // 3. Independently verify every derivation (the verifier).
    let report = fearless_verify::verify_program(&checked)?;
    println!(
        "verified: {} rule nodes, {} TS1 steps replayed",
        report.rule_nodes, report.vir_steps
    );

    // 4. Run with dynamic reservation checks on — they never fire for
    //    well-typed programs (Theorems 6.1/6.2).
    let mut machine = Machine::new(&program)?;
    let result = machine.call("demo", vec![Value::Int(5)])?;
    println!(
        "demo(5) = {result}   ({} reservation checks, zero faults)",
        machine.stats().reservation_checks
    );
    assert_eq!(result, Value::Int(5));
    Ok(())
}
