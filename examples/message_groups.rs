//! Fearless concurrency in action (paper §1, §7): producers build payloads
//! and send them; a consumer collects them into a linked list used as a
//! message queue; removed elements are shipped onward to another thread —
//! no locks, no synchronization on the data, and dynamic reservation
//! checks prove the reservations stay disjoint.
//!
//! ```text
//! cargo run -p fearless-bench --example message_groups
//! ```

use fearless_runtime::{Machine, MachineConfig, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entry = fearless_corpus::msg::worklist_entry();

    // The corpus programs are checked + verified first.
    let checked = entry.check(&fearless_core::CheckerOptions::default())?;
    fearless_verify::verify_program(&checked)?;
    println!("worklist programs checked and verified");

    for seed in 0..4 {
        let program = entry.parse();
        let mut m = Machine::with_config(
            &program,
            MachineConfig {
                random_schedule: true,
                seed,
                ..MachineConfig::default()
            },
        )?;
        // Whole list spines move between reservations (Fig. 15's
        // live-set transfer).
        m.spawn("batch_producer", vec![Value::Int(8), Value::Int(16)])?;
        let consumer = m.spawn("batch_consumer", vec![Value::Int(8)])?;
        m.run()?;
        let total = m.thread(consumer).result().cloned();
        println!(
            "seed {seed}: consumer summed {:?} over {} sends, {} reservation checks, 0 faults",
            total,
            m.stats().sends,
            m.stats().reservation_checks
        );
    }
    Ok(())
}
