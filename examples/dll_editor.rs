//! Editing a circular doubly linked list (paper Figs. 1, 3, 5): pushes at
//! both ends, in-place reads through `after:`-annotated functions, and the
//! `if disconnected` tail removal — including the size-1 case that broke
//! Fig. 4.
//!
//! ```text
//! cargo run -p fearless-bench --example dll_editor
//! ```

use fearless_runtime::{Machine, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entry = fearless_corpus::dll::entry();
    let checked = entry.check(&fearless_core::CheckerOptions::default())?;
    println!(
        "dll library checked: {} functions, {} TS1 steps",
        checked.derivations.len(),
        checked.total_vir_steps()
    );

    let program = entry.parse();
    let mut m = Machine::new(&program)?;

    let list = m.call("dll_new", vec![])?;
    for v in [10i64, 20, 30] {
        let d = m.call("dll_mk", vec![Value::Int(v)])?;
        m.call("dll_push_back", vec![list.clone(), d])?;
    }
    println!(
        "pushed 10, 20, 30; sum = {}",
        m.call("dll_sum", vec![list.clone(), Value::Int(3)])?
    );
    for pos in 0..4 {
        println!(
            "  nth({pos}) = {}",
            m.call("dll_nth_value", vec![list.clone(), Value::Int(pos)])?
        );
    }

    // Remove tails down to the empty list; the final removal exercises the
    // size-1 `if disconnected` else-branch.
    loop {
        let removed = m.call("dll_remove_tail", vec![list.clone()])?;
        if removed.is_none() {
            println!("list empty");
            break;
        }
        // Read the payload value through the heap.
        let value = removed
            .as_loc()
            .map(|obj| m.heap().read_field(obj, 0))
            .transpose()?
            .unwrap_or(Value::Int(-1));
        println!("removed tail payload value: {value}");
    }
    println!(
        "{} disconnect checks visited {} objects total",
        m.stats().disconnect_checks,
        m.stats().disconnect_visited
    );
    Ok(())
}
